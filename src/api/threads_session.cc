// Cluster-session machinery shared by the kThreads and kLocalTcp backends,
// plus the kThreads backend itself (one OS thread per site and a
// coordinator thread, wired by a pluggable ClusterTransport — the
// substrate of the paper's Figs. 7-8).

#include <memory>
#include <string>
#include <utility>

#include "api/backends.h"
#include "api/sharded_router.h"
#include "cluster/site_node.h"
#include "common/check.h"

namespace dsgm {
namespace internal {

RunReport ReportFromClusterResult(const ClusterResult& result, Backend backend) {
  RunReport report;
  report.backend = backend;
  report.events_processed = result.events_processed;
  report.runtime_seconds = result.runtime_seconds;
  report.wall_seconds = result.wall_seconds;
  report.throughput_events_per_sec = result.throughput_events_per_sec;
  report.comm = result.comm;
  report.max_counter_rel_error = result.max_counter_rel_error;
  report.transport_bytes_up = result.transport_bytes_up;
  report.transport_bytes_down = result.transport_bytes_down;
  report.transport_measured = result.transport_measured;
  return report;
}

// --- ClusterSessionBase -------------------------------------------------

ClusterSessionBase::ClusterSessionBase(Backend backend,
                                       const BayesianNetwork& network,
                                       const SessionOptions& options,
                                       const SeedSchedule& seeds)
    : Session(backend, network, options.tracker.num_sites, options.batch_size,
              seeds.sampler_seed, seeds.router_seed),
      options_(options),
      num_sites_(options.tracker.num_sites),
      layout_(std::make_shared<CounterLayout>(network)),
      health_board_(options.tracker.num_sites) {}

MetricsSnapshot ClusterSessionBase::Metrics() const {
  RefreshSiteHealth();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  snapshot.captured_nanos = NowNanos();
  snapshot.sites = health_board_.Snapshot(snapshot.captured_nanos);
  return snapshot;
}

void ClusterSessionBase::StartCoordinator(
    Channel<UpdateBundle>* updates,
    std::vector<Channel<RoundAdvance>*> commands) {
  coordinator_ = std::make_unique<CoordinatorNode>(
      LayoutEpsilons(network(), options_.tracker), layout_->total_counters(),
      num_sites_, options_.tracker.probability_constant, updates,
      std::move(commands));
  coordinator_thread_ = std::thread([this] { coordinator_->Run(); });
}

Status ClusterSessionBase::DeliverBatch(internal::IngestShard& shard, int site,
                                        EventBatch&& batch) {
  Channel<EventBatch>*& lane = shard.lanes[static_cast<size_t>(site)];
  if (lane == nullptr) lane = ShardLane(site);
  if (!lane->Push(std::move(batch))) {
    return RunFailureOr(InternalError("session: site " + std::to_string(site) +
                                      "'s event lane closed mid-run"));
  }
  return Status::Ok();
}

void ClusterSessionBase::RecordRunFailure(const Status& status) {
  DSGM_CHECK(!status.ok());
  MutexLock lock(&failure_mu_);
  if (run_failure_.ok()) run_failure_ = status;
}

Status ClusterSessionBase::run_failure() const {
  MutexLock lock(&failure_mu_);
  return run_failure_;
}

void ClusterSessionBase::SetFinalView(const ModelView& view) {
  MutexLock lock(&view_mu_);
  final_view_ = view;
}

Status ClusterSessionBase::RunFailureOr(Status fallback) const {
  Status failure = run_failure();
  return failure.ok() ? fallback : failure;
}

void ClusterSessionBase::CloseEventChannels() {
  for (Channel<EventBatch>* channel : event_channels_) channel->Close();
}

void ClusterSessionBase::JoinCoordinator() {
  if (coordinator_thread_.joinable()) coordinator_thread_.join();
}

ModelView ClusterSessionBase::ViewFromCoordinator(int64_t events_observed) const {
  std::vector<double> estimates;
  CommStats comm;
  coordinator_->SnapshotState(&estimates, &comm);
  return ModelView(network(), layout_, std::move(estimates), events_observed,
                   comm, options_.tracker.laplace_alpha);
}

StatusOr<ModelView> ClusterSessionBase::Snapshot() {
  if (finished_.load(std::memory_order_acquire)) {
    MutexLock lock(&view_mu_);
    if (final_view_.empty()) {
      return RunFailureOr(FailedPreconditionError(
          "session: Finish failed; no final model is available"));
    }
    return final_view_;
  }
  // A failed run has no valid model to present, even if the estimates are
  // still readable.
  DSGM_RETURN_IF_ERROR(run_failure());
  // Hand this thread's staged batches to the sites first: a query must
  // reflect every event the calling thread pushed (modulo in-flight
  // delivery); other producer threads' staged batches count as in-flight.
  DSGM_RETURN_IF_ERROR(FlushCallerShard());
  return ViewFromCoordinator(events_pushed());
}

// --- kThreads backend ---------------------------------------------------

namespace {

class ThreadsSession final : public ClusterSessionBase {
 public:
  ThreadsSession(const BayesianNetwork& network, const SessionOptions& options,
                 const SeedSchedule& seeds)
      : ClusterSessionBase(Backend::kThreads, network, options, seeds) {
    const int k = num_sites_;
    const bool loopback = !options_.transport;
    transport_ = options_.transport ? options_.transport(k)
                                    : MakeLoopbackTransport(k);
    DSGM_CHECK_EQ(transport_->num_sites(), k);
    const CoordinatorEndpoints endpoints = transport_->coordinator();
    std::vector<Channel<EventBatch>*> site_events = endpoints.events;
    if (loopback) {
      // In-process sites: bypass the transport's MPMC event queues with one
      // SPSC lane hub per site, so N producer shards dispatch without any
      // shared lock. Socket transports keep their own (thread-safe) channel
      // Push at the transport boundary instead.
      for (int s = 0; s < k; ++s) {
        hubs_.push_back(std::make_unique<SpscLaneHub>());
      }
      site_events.clear();
      event_channels_.clear();
      for (int s = 0; s < k; ++s) {
        site_events.push_back(hubs_[static_cast<size_t>(s)].get());
        event_channels_.push_back(hubs_[static_cast<size_t>(s)].get());
      }
    } else {
      event_channels_ = endpoints.events;
    }
    StartCoordinator(endpoints.updates, endpoints.commands);
    for (int s = 0; s < k; ++s) {
      const SiteEndpoints site_endpoints = transport_->site(s);
      Channel<EventBatch>* events =
          loopback ? site_events[static_cast<size_t>(s)] : site_endpoints.events;
      sites_.push_back(std::make_unique<SiteNode>(
          s, network, seeds.site_seeds[static_cast<size_t>(s)], events,
          site_endpoints.commands, site_endpoints.updates));
    }
    for (int s = 0; s < k; ++s) {
      site_threads_.emplace_back(
          [this, s] { sites_[static_cast<size_t>(s)]->Run(); });
    }
    // After the sites exist: the dump fn refreshes the board from them.
    StartMetricsDump(options_.metrics_dump_ms, options_.metrics_dump_stream,
                     [this] { return Metrics(); });
  }

  ~ThreadsSession() override { Teardown(); }

  StatusOr<RunReport> Finish() override {
    if (finished_.load(std::memory_order_acquire)) {
      return FailedPreconditionError("session: Finish called twice");
    }
    finished_.store(true, std::memory_order_release);
    // Tear down even when the flush fails (a site lane closed early):
    // leaving protocol threads running behind an error return would leak
    // them until the destructor.
    const Status flushed = FlushAllShards();
    Teardown();
    DSGM_RETURN_IF_ERROR(flushed);

    ClusterResult result;
    result.wall_seconds = wall_.ElapsedSeconds();
    const TransportStats transport_stats = transport_->stats();
    result.transport_bytes_up = transport_stats.bytes_up;
    result.transport_bytes_down = transport_stats.bytes_down;
    result.transport_measured = transport_stats.measured;
    for (const auto& site : sites_) {
      result.events_processed += site->events_processed();
    }
    DSGM_CHECK_EQ(result.events_processed, events_pushed());

    std::vector<uint64_t> exact_totals(
        static_cast<size_t>(layout_->total_counters()), 0);
    for (const auto& site : sites_) {
      for (size_t c = 0; c < exact_totals.size(); ++c) {
        exact_totals[c] += site->local_counts()[c];
      }
    }
    FinalizeClusterResult(*coordinator_, exact_totals, &result);
    transport_->Shutdown();

    RunReport report = ReportFromClusterResult(result, Backend::kThreads);
    report.model = ViewFromCoordinator(result.events_processed);
    report.metrics = Metrics();
    report.model.AttachMetrics(report.metrics);
    SetFinalView(report.model);
    return report;
  }

 protected:
  Channel<EventBatch>* ShardLane(int site) override {
    if (!hubs_.empty()) return hubs_[static_cast<size_t>(site)]->AddLane();
    return ClusterSessionBase::ShardLane(site);
  }

  /// In-process sites: sample each SiteNode's live stats atomics straight
  /// into the board (there is no wire for kStatsReport frames to ride).
  void RefreshSiteHealth() const override {
    const int64_t now = NowNanos();
    for (size_t s = 0; s < sites_.size(); ++s) {
      const SiteStatsReport stats = sites_[s]->StatsReport();
      health_board_.Touch(static_cast<int>(s), now);
      health_board_.Update(static_cast<int>(s), stats.events_processed,
                           stats.updates_sent, stats.syncs_sent,
                           stats.rounds_seen);
    }
  }

 private:
  /// Ends the stream and joins every backend thread. Safe to call twice;
  /// also runs from the destructor so dropping an unfinished session never
  /// leaks running threads.
  void Teardown() {
    if (torn_down_) return;
    torn_down_ = true;
    // Before anything dies: the dump fn reads the SiteNodes via
    // RefreshSiteHealth, and its final line should see the run's totals.
    StopMetricsDump();
    CloseEventChannels();
    for (std::thread& thread : site_threads_) {
      if (thread.joinable()) thread.join();
    }
    JoinCoordinator();
  }

  std::unique_ptr<ClusterTransport> transport_;
  /// Loopback mode only: per-site SPSC lane hubs (they ARE the site event
  /// channels then). Destroyed after Teardown joined every consumer.
  std::vector<std::unique_ptr<SpscLaneHub>> hubs_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
  std::vector<std::thread> site_threads_;
  bool torn_down_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<Session>> CreateThreadsSession(
    const BayesianNetwork& network, const SessionOptions& options) {
  return std::unique_ptr<Session>(new ThreadsSession(
      network, options, DeriveSeedSchedule(options.tracker)));
}

}  // namespace internal
}  // namespace dsgm
