#include "monitor/comm_stats.h"

#include <sstream>

namespace dsgm {

std::string CommStats::ToString() const {
  std::ostringstream os;
  os << "updates=" << update_messages << " broadcasts=" << broadcast_messages
     << " syncs=" << sync_messages << " total=" << TotalMessages()
     << " wire=" << wire_messages << " rounds=" << rounds_advanced;
  return os.str();
}

}  // namespace dsgm
