// Abstract interface over a family of distributed counters.
//
// The MLE tracker maintains, for every variable i, the counter blocks
// A_i(x_i, x_i^par) and A_i(x_i^par) (Algorithm 1 of the paper). A family
// holds all counters of one tracker in flat arenas so that per-event updates
// touch contiguous metadata instead of millions of tiny heap objects.

#ifndef DSGM_MONITOR_COUNTER_FAMILY_H_
#define DSGM_MONITOR_COUNTER_FAMILY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/comm_stats.h"

namespace dsgm {

/// Interface shared by the exact and the randomized counter families.
///
/// A family owns `num_counters` logically distributed counters, each
/// incremented from any of `num_sites` sites; communication is charged to a
/// CommStats instance owned by the caller.
class CounterFamily {
 public:
  virtual ~CounterFamily() = default;

  /// Registers one event occurrence for `counter` at `site`. Returns true
  /// iff the site emitted at least one site->coordinator message (the
  /// tracker uses this to account bundled wire messages).
  virtual bool Increment(int64_t counter, int site) = 0;

  /// The coordinator's current estimate of the counter's total.
  virtual double Estimate(int64_t counter) const = 0;

  /// Ground-truth total across sites (test oracle; the coordinator of the
  /// randomized family does not use this).
  virtual uint64_t ExactTotal(int64_t counter) const = 0;

  virtual int64_t num_counters() const = 0;
  virtual int num_sites() const = 0;

  /// Bytes of per-counter-and-site state; reported by benches.
  virtual uint64_t MemoryBytes() const = 0;
};

}  // namespace dsgm

#endif  // DSGM_MONITOR_COUNTER_FAMILY_H_
