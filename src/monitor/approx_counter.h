// Randomized distributed counters (Huang-Yi-Zhang, the paper's Lemma 4).
//
// Protocol (per counter, executed over k sites and one coordinator):
//
//  * Rounds. Round j uses reporting probability p_j = min(1, c√k/(ε 2^j))
//    (monitor/round_schedule.h). While p_j = 1 the counter behaves exactly.
//  * Site side. Each site keeps a cumulative local count n_i. On every
//    increment it sends its current n_i to the coordinator with
//    probability p_j.
//  * Coordinator side. For each site it remembers the exact count at the
//    last round sync (sync_i) and the largest report received this round
//    (best_i). Its per-site estimate is
//        n̂_i = sync_i                       if no report arrived this round,
//        n̂_i = best_i + (1/p_j - 1)         otherwise,
//    which is exactly unbiased with variance <= 2/p_j², giving the
//    family-wide contract E[A] = C and Var[A] = O((εC)²).
//  * Round advance. When the coordinator estimate Σ_i n̂_i crosses
//    2^(j+1) it announces the new round to all sites (k broadcast
//    messages); sites reply with their exact counts (k sync messages) and
//    the estimator restarts from exact state. Transitions between rounds
//    whose p stays 1 are free: nothing about the protocol state changes,
//    so no messages are exchanged (and none would be in a real deployment).
//
// Communication per counter: C messages while C <= ~c√k/ε (the exact
// phase), then O(√k/ε + k) per doubling of the count — i.e.
// O((√k/ε + k) log C) in the sampled regime, matching Lemma 4 up to the
// broadcast term that the paper's O-bound absorbs.
//
// All counters of one tracker live in one family; state is stored in flat
// arrays indexed [counter * k + site] for cache-friendly updates.

#ifndef DSGM_MONITOR_APPROX_COUNTER_H_
#define DSGM_MONITOR_APPROX_COUNTER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "monitor/counter_family.h"

namespace dsgm {

/// Tunables of the randomized counter family.
struct ApproxCounterOptions {
  int num_sites = 30;
  uint64_t seed = 1;
  /// Safety constant c of the round schedule (DESIGN.md section 6).
  double probability_constant = 1.0;
};

/// Family of randomized distributed counters with per-counter error
/// parameters (NONUNIFORM assigns different ε to different variables).
class ApproxCounterFamily final : public CounterFamily {
 public:
  /// `epsilons[c]` is the ε of counter c; values must be in (0, 1].
  ApproxCounterFamily(std::vector<float> epsilons, const ApproxCounterOptions& options,
                      CommStats* stats);

  bool Increment(int64_t counter, int site) override;
  double Estimate(int64_t counter) const override;
  uint64_t ExactTotal(int64_t counter) const override;

  int64_t num_counters() const override { return num_counters_; }
  int num_sites() const override { return num_sites_; }
  uint64_t MemoryBytes() const override;

  /// Current round of a counter (observability / tests).
  int round(int64_t counter) const { return rounds_[static_cast<size_t>(counter)]; }
  /// Current reporting probability of a counter.
  double probability(int64_t counter) const {
    return probs_[static_cast<size_t>(counter)];
  }

 private:
  /// Applies a report of cumulative count `value` from `site` to the
  /// coordinator state of `counter`, then advances rounds as needed.
  void CoordinatorOnReport(int64_t counter, int site, uint32_t value);
  void MaybeAdvanceRounds(int64_t counter);

  int64_t num_counters_;
  int num_sites_;
  double safety_;
  CommStats* stats_;

  // --- Site-side state, [counter * k + site].
  std::vector<uint32_t> site_counts_;
  // --- Coordinator-side state, [counter * k + site].
  std::vector<uint32_t> sync_counts_;  // exact count at last round sync
  std::vector<uint32_t> best_reports_; // max report this round (<= sync: none)
  // --- Coordinator-side per-counter state.
  std::vector<float> epsilons_;
  std::vector<float> probs_;        // p_j of the current round
  std::vector<double> estimates_;   // Σ_i n̂_i, maintained incrementally
  std::vector<double> thresholds_;  // advance when estimate >= threshold
  std::vector<uint8_t> rounds_;

  // One RNG per site: the Bernoulli reporting decisions of different sites
  // are independent streams.
  std::vector<Rng> site_rngs_;
};

}  // namespace dsgm

#endif  // DSGM_MONITOR_APPROX_COUNTER_H_
