#include "monitor/approx_counter.h"

#include <cmath>

#include "common/check.h"
#include "monitor/round_schedule.h"

namespace dsgm {
namespace {

// Codec-calibrated wire payloads; see monitor/comm_stats.h.
constexpr uint64_t kUpdateBytes = kEstimatedUpdateBytes;
constexpr uint64_t kBroadcastBytes = kEstimatedBroadcastBytes;
constexpr uint64_t kSyncBytes = kEstimatedSyncBytes;

}  // namespace

ApproxCounterFamily::ApproxCounterFamily(std::vector<float> epsilons,
                                         const ApproxCounterOptions& options,
                                         CommStats* stats)
    : num_counters_(static_cast<int64_t>(epsilons.size())),
      num_sites_(options.num_sites),
      safety_(options.probability_constant),
      stats_(stats),
      epsilons_(std::move(epsilons)) {
  DSGM_CHECK_GT(num_counters_, 0);
  DSGM_CHECK_GT(num_sites_, 0);
  DSGM_CHECK(stats_ != nullptr);
  for (float eps : epsilons_) {
    DSGM_CHECK(eps > 0.0f && eps <= 1.0f) << "counter epsilon out of (0,1]:" << eps;
  }
  const size_t cells = static_cast<size_t>(num_counters_) * num_sites_;
  site_counts_.assign(cells, 0);
  sync_counts_.assign(cells, 0);
  best_reports_.assign(cells, 0);
  probs_.resize(static_cast<size_t>(num_counters_));
  estimates_.assign(static_cast<size_t>(num_counters_), 0.0);
  thresholds_.resize(static_cast<size_t>(num_counters_));
  rounds_.assign(static_cast<size_t>(num_counters_), 0);
  for (int64_t c = 0; c < num_counters_; ++c) {
    probs_[static_cast<size_t>(c)] = static_cast<float>(
        RoundProbability(epsilons_[static_cast<size_t>(c)], 0, num_sites_, safety_));
    thresholds_[static_cast<size_t>(c)] = RoundThreshold(0);
  }
  Rng seeder(options.seed);
  site_rngs_.reserve(static_cast<size_t>(num_sites_));
  for (int s = 0; s < num_sites_; ++s) site_rngs_.push_back(seeder.Split());
}

bool ApproxCounterFamily::Increment(int64_t counter, int site) {
  DSGM_DCHECK(counter >= 0 && counter < num_counters_);
  DSGM_DCHECK(site >= 0 && site < num_sites_);
  const size_t cell = static_cast<size_t>(counter) * num_sites_ + site;
  const uint32_t local = ++site_counts_[cell];

  const double p = probs_[static_cast<size_t>(counter)];
  const bool report =
      p >= 1.0 || site_rngs_[static_cast<size_t>(site)].NextBernoulli(p);
  if (!report) return false;

  ++stats_->update_messages;
  stats_->bytes_up += kUpdateBytes;
  CoordinatorOnReport(counter, site, local);
  return true;
}

void ApproxCounterFamily::CoordinatorOnReport(int64_t counter, int site,
                                              uint32_t value) {
  const size_t cell = static_cast<size_t>(counter) * num_sites_ + site;
  const uint32_t sync = sync_counts_[cell];
  const uint32_t best = best_reports_[cell];
  const double p = probs_[static_cast<size_t>(counter)];
  const double gap = 1.0 / p - 1.0;
  double& estimate = estimates_[static_cast<size_t>(counter)];
  if (best <= sync) {
    // First report this round: site estimate moves from sync to value+gap.
    estimate += (static_cast<double>(value) + gap) - static_cast<double>(sync);
    best_reports_[cell] = value;
  } else if (value > best) {
    estimate += static_cast<double>(value) - static_cast<double>(best);
    best_reports_[cell] = value;
  }  // Stale (reordered) reports carry no new information.
  MaybeAdvanceRounds(counter);
}

void ApproxCounterFamily::MaybeAdvanceRounds(int64_t counter) {
  const size_t c = static_cast<size_t>(counter);
  if (estimates_[c] < thresholds_[c]) return;

  const double old_p = probs_[c];
  int round = rounds_[c];
  while (estimates_[c] >= RoundThreshold(round) && round < kMaxRound) ++round;
  const double new_p =
      RoundProbability(epsilons_[c], round, num_sites_, safety_);
  rounds_[c] = static_cast<uint8_t>(round);
  thresholds_[c] = RoundThreshold(round);

  if (new_p >= 1.0) {
    // Still in the exact phase: the coordinator state is already exact and
    // the sites' behaviour is unchanged, so the transition is silent.
    probs_[c] = 1.0f;
    return;
  }
  probs_[c] = static_cast<float>(new_p);
  ++stats_->rounds_advanced;

  // Announce the new round to every site.
  stats_->broadcast_messages += static_cast<uint64_t>(num_sites_);
  stats_->bytes_down += kBroadcastBytes * static_cast<uint64_t>(num_sites_);

  if (old_p >= 1.0) {
    // Entering the sampled regime from the exact phase: the coordinator
    // already knows every site count exactly, sites need no reply.
    const size_t base = c * static_cast<size_t>(num_sites_);
    double exact = 0.0;
    for (int s = 0; s < num_sites_; ++s) {
      // best_reports_ == site_counts_ during the exact phase.
      sync_counts_[base + s] = site_counts_[base + s];
      best_reports_[base + s] = sync_counts_[base + s];
      exact += static_cast<double>(sync_counts_[base + s]);
    }
    estimates_[c] = exact;
    return;
  }

  // Sampled-phase round change: every site replies with its exact count and
  // the estimator restarts from exact state.
  stats_->sync_messages += static_cast<uint64_t>(num_sites_);
  stats_->bytes_up += kSyncBytes * static_cast<uint64_t>(num_sites_);
  const size_t base = c * static_cast<size_t>(num_sites_);
  double exact = 0.0;
  for (int s = 0; s < num_sites_; ++s) {
    sync_counts_[base + s] = site_counts_[base + s];
    best_reports_[base + s] = sync_counts_[base + s];
    exact += static_cast<double>(sync_counts_[base + s]);
  }
  estimates_[c] = exact;
  // The sync may itself push the estimate over further thresholds.
  if (estimates_[c] >= thresholds_[c]) MaybeAdvanceRounds(counter);
}

double ApproxCounterFamily::Estimate(int64_t counter) const {
  DSGM_DCHECK(counter >= 0 && counter < num_counters_);
  return estimates_[static_cast<size_t>(counter)];
}

uint64_t ApproxCounterFamily::ExactTotal(int64_t counter) const {
  DSGM_DCHECK(counter >= 0 && counter < num_counters_);
  const size_t base = static_cast<size_t>(counter) * num_sites_;
  uint64_t total = 0;
  for (int s = 0; s < num_sites_; ++s) total += site_counts_[base + s];
  return total;
}

uint64_t ApproxCounterFamily::MemoryBytes() const {
  const uint64_t cells = static_cast<uint64_t>(num_counters_) * num_sites_;
  return cells * (sizeof(uint32_t) * 3) +
         static_cast<uint64_t>(num_counters_) *
             (sizeof(float) * 2 + sizeof(double) * 2 + sizeof(uint8_t));
}

}  // namespace dsgm
