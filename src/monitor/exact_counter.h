// Exact distributed counters: the EXACTMLE strawman (paper Section IV-A).

#ifndef DSGM_MONITOR_EXACT_COUNTER_H_
#define DSGM_MONITOR_EXACT_COUNTER_H_

#include <vector>

#include "monitor/counter_family.h"

namespace dsgm {

/// Every increment at a site is forwarded to the coordinator immediately,
/// so the coordinator always holds the exact count (Lemma 5: O(m n) total
/// communication, one update message per counter per event).
class ExactCounterFamily final : public CounterFamily {
 public:
  ExactCounterFamily(int64_t num_counters, int num_sites, CommStats* stats);

  bool Increment(int64_t counter, int site) override;
  double Estimate(int64_t counter) const override;
  uint64_t ExactTotal(int64_t counter) const override;

  int64_t num_counters() const override {
    return static_cast<int64_t>(totals_.size());
  }
  int num_sites() const override { return num_sites_; }
  uint64_t MemoryBytes() const override {
    return totals_.size() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> totals_;
  int num_sites_;
  CommStats* stats_;
};

}  // namespace dsgm

#endif  // DSGM_MONITOR_EXACT_COUNTER_H_
