#include "monitor/deterministic_counter.h"

#include <cmath>

#include "common/check.h"

namespace dsgm {
namespace {

// Codec-calibrated wire payload of one update message (comm_stats.h).
constexpr uint64_t kUpdateBytes = kEstimatedUpdateBytes;

}  // namespace

DeterministicCounterFamily::DeterministicCounterFamily(std::vector<float> epsilons,
                                                       int num_sites,
                                                       CommStats* stats)
    : num_counters_(static_cast<int64_t>(epsilons.size())),
      num_sites_(num_sites),
      stats_(stats),
      epsilons_(std::move(epsilons)) {
  DSGM_CHECK_GT(num_counters_, 0);
  DSGM_CHECK_GT(num_sites_, 0);
  DSGM_CHECK(stats_ != nullptr);
  for (float eps : epsilons_) {
    DSGM_CHECK(eps > 0.0f && eps <= 1.0f) << "counter epsilon out of (0,1]:" << eps;
  }
  const size_t cells = static_cast<size_t>(num_counters_) * num_sites_;
  site_counts_.assign(cells, 0);
  last_reported_.assign(cells, 0);
  estimates_.assign(static_cast<size_t>(num_counters_), 0.0);
}

bool DeterministicCounterFamily::Increment(int64_t counter, int site) {
  DSGM_DCHECK(counter >= 0 && counter < num_counters_);
  DSGM_DCHECK(site >= 0 && site < num_sites_);
  const size_t cell = static_cast<size_t>(counter) * num_sites_ + site;
  const uint32_t local = ++site_counts_[cell];
  const uint32_t reported = last_reported_[cell];
  // Report when the local count grew by a factor (1 + eps) — and always on
  // the first increment, so small counters are exact.
  const double threshold =
      static_cast<double>(reported) * (1.0 + epsilons_[static_cast<size_t>(counter)]);
  if (reported != 0 && static_cast<double>(local) < threshold) return false;

  estimates_[static_cast<size_t>(counter)] +=
      static_cast<double>(local) - static_cast<double>(reported);
  last_reported_[cell] = local;
  ++stats_->update_messages;
  stats_->bytes_up += kUpdateBytes;
  return true;
}

double DeterministicCounterFamily::Estimate(int64_t counter) const {
  DSGM_DCHECK(counter >= 0 && counter < num_counters_);
  return estimates_[static_cast<size_t>(counter)];
}

uint64_t DeterministicCounterFamily::ExactTotal(int64_t counter) const {
  DSGM_DCHECK(counter >= 0 && counter < num_counters_);
  const size_t base = static_cast<size_t>(counter) * num_sites_;
  uint64_t total = 0;
  for (int s = 0; s < num_sites_; ++s) total += site_counts_[base + s];
  return total;
}

uint64_t DeterministicCounterFamily::MemoryBytes() const {
  const uint64_t cells = static_cast<uint64_t>(num_counters_) * num_sites_;
  return cells * sizeof(uint32_t) * 2 +
         static_cast<uint64_t>(num_counters_) * (sizeof(double) + sizeof(float));
}

}  // namespace dsgm
