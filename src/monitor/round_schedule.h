// Round schedule of the randomized distributed counter.
//
// Shared between the synchronous simulation (monitor/approx_counter.*) and
// the threaded cluster implementation (cluster/*) so both speak the exact
// same protocol.

#ifndef DSGM_MONITOR_ROUND_SCHEDULE_H_
#define DSGM_MONITOR_ROUND_SCHEDULE_H_

#include <algorithm>
#include <cmath>

namespace dsgm {

/// Reporting probability of round `round`:
///   p_j = min(1, c * sqrt(k) / (eps * 2^j)).
/// While the counter is small p stays 1 (every increment reported, zero
/// error); once the estimate reaches ~c*sqrt(k)/eps the counter enters the
/// sampled regime and p halves as the count doubles, which keeps the
/// per-round variance k/p^2 = O((eps * 2^j)^2) = O((eps C)^2) — the contract
/// of the paper's Lemma 4 (Huang-Yi-Zhang).
inline double RoundProbability(double eps, int round, int num_sites,
                               double safety) {
  const double denom = eps * std::ldexp(1.0, round);  // eps * 2^round
  const double p = safety * std::sqrt(static_cast<double>(num_sites)) / denom;
  return std::min(1.0, p);
}

/// A counter leaves round `round` when its estimate reaches 2^(round+1).
inline double RoundThreshold(int round) { return std::ldexp(1.0, round + 1); }

/// Rounds are capped so 2^round stays finite; far beyond any stream here.
inline constexpr int kMaxRound = 62;

}  // namespace dsgm

#endif  // DSGM_MONITOR_ROUND_SCHEDULE_H_
