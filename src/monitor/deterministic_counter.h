// Deterministic threshold counters — the prior-art baseline the paper cites
// as [22] (Keralapura, Cormode, Ramamirtham: "Communication-efficient
// distributed monitoring of thresholded counts", SIGMOD'06).
//
// Each site reports its local count whenever it has grown by a factor
// (1 + ε) since its last report. The coordinator's estimate (the sum of the
// last reports) deterministically satisfies  (1-ε')·C <= A <= C  with
// ε' = ε/(1+ε): each site's unreported tail is at most ε/(1+ε) of its local
// count. Communication is O(k · log_{1+ε} C) messages per counter — the
// factor-k penalty relative to the randomized counter's O(√k/ε · log C)
// is exactly what motivates the paper's use of the Huang-Yi-Zhang sampler;
// bench_ablation_counter_type quantifies the gap.

#ifndef DSGM_MONITOR_DETERMINISTIC_COUNTER_H_
#define DSGM_MONITOR_DETERMINISTIC_COUNTER_H_

#include <cstdint>
#include <vector>

#include "monitor/counter_family.h"

namespace dsgm {

/// Family of deterministic threshold counters with per-counter epsilons.
class DeterministicCounterFamily final : public CounterFamily {
 public:
  /// `epsilons[c]` is the growth threshold of counter c, in (0, 1].
  DeterministicCounterFamily(std::vector<float> epsilons, int num_sites,
                             CommStats* stats);

  bool Increment(int64_t counter, int site) override;
  double Estimate(int64_t counter) const override;
  uint64_t ExactTotal(int64_t counter) const override;

  int64_t num_counters() const override { return num_counters_; }
  int num_sites() const override { return num_sites_; }
  uint64_t MemoryBytes() const override;

 private:
  int64_t num_counters_;
  int num_sites_;
  CommStats* stats_;

  std::vector<float> epsilons_;
  // [counter * k + site]
  std::vector<uint32_t> site_counts_;
  std::vector<uint32_t> last_reported_;
  // Per-counter coordinator estimate: sum of last reports.
  std::vector<double> estimates_;
};

}  // namespace dsgm

#endif  // DSGM_MONITOR_DETERMINISTIC_COUNTER_H_
