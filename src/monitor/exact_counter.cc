#include "monitor/exact_counter.h"

#include "common/check.h"

namespace dsgm {
namespace {

// Codec-calibrated wire payload of one update message (comm_stats.h).
constexpr uint64_t kUpdateBytes = kEstimatedUpdateBytes;

}  // namespace

ExactCounterFamily::ExactCounterFamily(int64_t num_counters, int num_sites,
                                       CommStats* stats)
    : totals_(static_cast<size_t>(num_counters), 0),
      num_sites_(num_sites),
      stats_(stats) {
  DSGM_CHECK_GT(num_counters, 0);
  DSGM_CHECK_GT(num_sites, 0);
  DSGM_CHECK(stats != nullptr);
}

bool ExactCounterFamily::Increment(int64_t counter, int site) {
  DSGM_DCHECK(counter >= 0 && counter < num_counters());
  DSGM_DCHECK(site >= 0 && site < num_sites_);
  (void)site;  // Exact counters keep no per-site state: the update is
               // forwarded to the coordinator the moment it happens.
  ++totals_[static_cast<size_t>(counter)];
  ++stats_->update_messages;
  stats_->bytes_up += kUpdateBytes;
  return true;
}

double ExactCounterFamily::Estimate(int64_t counter) const {
  DSGM_DCHECK(counter >= 0 && counter < num_counters());
  return static_cast<double>(totals_[static_cast<size_t>(counter)]);
}

uint64_t ExactCounterFamily::ExactTotal(int64_t counter) const {
  DSGM_DCHECK(counter >= 0 && counter < num_counters());
  return totals_[static_cast<size_t>(counter)];
}

}  // namespace dsgm
