// Communication accounting for the continuous monitoring substrate.

#ifndef DSGM_MONITOR_COMM_STATS_H_
#define DSGM_MONITOR_COMM_STATS_H_

#include <cstdint>
#include <string>

namespace dsgm {

/// Per-message wire-byte estimates used for CommStats byte accounting,
/// calibrated against the net/codec.h varint wire format (the layer below;
/// these are plain numbers so the monitor layer stays independent of net/).
/// tests/codec_test.cc re-derives them from actually encoded frames and
/// fails if the codec drifts, keeping fig6/fig11 byte counts honest at the
/// source. History: before calibration these were 12/10/12 — flat guesses
/// that overshot the delta+varint wire by the ~2.8x ratio bench_net_transport
/// measures; now they match the marginal cost of one message:
///   - update: one CounterReport inside a kReports bundle — delta-coded
///     counter id (~1 byte, ids within a bundle are near-sorted) + varint
///     cumulative count (~3 bytes mid-run), amortized bundle header.
///   - broadcast: one RoundAdvance frame — 4B length prefix + type + zigzag
///     counter id (~2 bytes for networks up to ~8k counters) + round + f32.
///   - sync: one CounterReport inside a kSync reply — dense counter ranges
///     make the delta 1 byte; count ~3 bytes.
constexpr uint64_t kEstimatedUpdateBytes = 4;
constexpr uint64_t kEstimatedBroadcastBytes = 12;
constexpr uint64_t kEstimatedSyncBytes = 4;

/// Message counters shared by every counter family of one tracker.
///
/// The unit of `update_messages` is ONE counter update, matching the paper's
/// Table III convention (EXACTMLE sends 2n of them per event). Broadcasts
/// fan out to every site, so a round announcement adds k. `wire_messages`
/// counts physically distinct transmissions after the paper's bundling
/// optimization (all updates one event causes at one site travel together).
struct CommStats {
  uint64_t update_messages = 0;     // site -> coordinator counter updates
  uint64_t broadcast_messages = 0;  // coordinator -> site round announcements
  uint64_t sync_messages = 0;       // site -> coordinator round-sync replies
  uint64_t wire_messages = 0;       // bundled transmissions (see above)
  uint64_t rounds_advanced = 0;     // sampled-phase round transitions
  uint64_t bytes_up = 0;            // site -> coordinator payload bytes
  uint64_t bytes_down = 0;          // coordinator -> site payload bytes

  /// Total logical messages: the paper's "number of messages" metric.
  uint64_t TotalMessages() const {
    return update_messages + broadcast_messages + sync_messages;
  }

  CommStats& operator+=(const CommStats& other) {
    update_messages += other.update_messages;
    broadcast_messages += other.broadcast_messages;
    sync_messages += other.sync_messages;
    wire_messages += other.wire_messages;
    rounds_advanced += other.rounds_advanced;
    bytes_up += other.bytes_up;
    bytes_down += other.bytes_down;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace dsgm

#endif  // DSGM_MONITOR_COMM_STATS_H_
