// Error-budget allocation across the counters of a Bayesian network.
//
// The joint estimate multiplies 2n counter ratios, so each counter gets a
// share nu_i / mu_i of the global error budget epsilon. How that budget is
// split is exactly what distinguishes the paper's three algorithms:
//
//   BASELINE    nu_i = mu_i = eps / (3n)          (union bound, Section IV-C)
//   UNIFORM     nu_i = mu_i = eps / (16 sqrt(n))  (variance analysis, IV-D)
//   NONUNIFORM  nu_i ∝ (J_i K_i)^{1/3}, mu_i ∝ K_i^{1/3}  (eqs. 7-8, IV-E)
//   Naive Bayes the NONUNIFORM solution specialized to the two-layer tree
//               (eq. 9, Section V)
//
// NONUNIFORM minimizes total communication  sum_i w_i / nu_i  subject to the
// variance constraint  sum_i nu_i^2 = (eps/16)^2; the Lagrange-multiplier
// optimum is nu_i = B * w_i^{1/3} / sqrt(sum_j w_j^{2/3}) with B = eps/16.

#ifndef DSGM_CORE_ERROR_ALLOCATION_H_
#define DSGM_CORE_ERROR_ALLOCATION_H_

#include <vector>

#include "bayes/network.h"
#include "core/tracker_config.h"

namespace dsgm {

/// Per-variable error parameters: `joint[i]` configures the counters
/// A_i(x_i, x^par) (epsfnA) and `parent[i]` the counters A_i(x^par)
/// (epsfnB) of Algorithm 1.
struct ErrorAllocation {
  std::vector<double> joint;
  std::vector<double> parent;
};

/// Solves  min sum_i weights[i]/nu_i  s.t.  sum_i nu_i^2 = budget^2  in
/// closed form: nu_i = budget * w_i^{1/3} / sqrt(sum_j w_j^{2/3}).
/// Weights must be positive.
std::vector<double> AllocateBudget(const std::vector<double>& weights, double budget);

/// Communication-cost objective  sum_i weights[i]/nu_i  of an allocation;
/// used by tests and the allocation ablation to compare split rules.
double AllocationCost(const std::vector<double>& weights,
                      const std::vector<double>& nus);

/// Computes the allocation for `strategy` on `network` with global error
/// `epsilon`. `strategy` must not be kExactMle (exact counters carry no
/// error parameter). For kNaiveBayes the network must be a two-layer tree
/// rooted at node 0 (checked).
ErrorAllocation ComputeAllocation(const BayesianNetwork& network,
                                  TrackingStrategy strategy, double epsilon);

}  // namespace dsgm

#endif  // DSGM_CORE_ERROR_ALLOCATION_H_
