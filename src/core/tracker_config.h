// Configuration of the distributed MLE tracker.

#ifndef DSGM_CORE_TRACKER_CONFIG_H_
#define DSGM_CORE_TRACKER_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dsgm {

/// The four algorithms of the paper (Section VI-A, "Algorithms") plus the
/// Naive-Bayes specialization of NONUNIFORM (Section V).
enum class TrackingStrategy {
  kExactMle,
  kBaseline,
  kUniform,
  kNonUniform,
  kNaiveBayes,
};

const char* ToString(TrackingStrategy strategy);

/// Which distributed-counter protocol backs the approximate strategies.
enum class CounterType {
  /// Randomized Huang-Yi-Zhang sampling counters (the paper's choice,
  /// Lemma 4): O(√k/ε · log C) messages, unbiased, variance (εC)².
  kRandomized,
  /// Deterministic threshold counters (prior art, the paper's reference
  /// [22]): O(k/ε · log C) messages, one-sided deterministic error.
  kDeterministic,
};

const char* ToString(CounterType type);

/// Parses "exact", "baseline", "uniform", "nonuniform"/"non-uniform",
/// "naive-bayes" (case insensitive).
StatusOr<TrackingStrategy> TrackingStrategyFromName(const std::string& name);

/// Knobs of MleTracker. Defaults mirror the paper's evaluation setup
/// (epsilon = 0.1, k = 30 sites).
struct TrackerConfig {
  TrackingStrategy strategy = TrackingStrategy::kNonUniform;
  /// Counter protocol for the approximate strategies (ignored by kExactMle).
  CounterType counter_type = CounterType::kRandomized;
  /// Global approximation factor (Definition 2).
  double epsilon = 0.1;
  /// Number of remote sites receiving stream events.
  int num_sites = 30;
  /// Seed for all randomized counter decisions.
  uint64_t seed = 7;
  /// Independent tracker replicas whose estimates are combined by median —
  /// the O(log 1/delta) amplification of Theorem 1. The paper's experiments
  /// (and our defaults) run a single instance.
  int replicas = 1;
  /// Safety constant of the counter round schedule (DESIGN.md section 6).
  double probability_constant = 1.0;
  /// Constant-factor loosening applied to the per-variable error allocation
  /// before it parameterizes the counters: counter epsilon = relaxation *
  /// nu_i. The paper's /16 constants budget for sqrt(8)-sigma Chebyshev
  /// deviations; since sqrt(8)*R/16 < 1 for R <= 5 the e^{±eps} guarantee of
  /// Definition 2 is preserved while counters enter the cheap sampled
  /// regime ~R times earlier. The paper's reported message counts (e.g.
  /// Table III) are only reachable with such a constant; see EXPERIMENTS.md.
  double allocation_relaxation = 4.0;
  /// Optional Laplace smoothing applied at query time:
  /// (A + a) / (B + a * J). 0 reproduces the raw MLE of the paper.
  double laplace_alpha = 0.0;

  Status Validate() const;
};

}  // namespace dsgm

#endif  // DSGM_CORE_TRACKER_CONFIG_H_
