#include "core/mle_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "monitor/approx_counter.h"
#include "monitor/deterministic_counter.h"
#include "monitor/exact_counter.h"

namespace dsgm {

MleTracker::MleTracker(const BayesianNetwork& network, const TrackerConfig& config)
    : network_(&network), config_(config) {
  DSGM_CHECK(config_.Validate().ok()) << config_.Validate();
  const int n = network.num_variables();

  // --- Counter id layout.
  joint_base_.resize(static_cast<size_t>(n));
  parent_base_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    joint_base_[static_cast<size_t>(i)] = total_joint_;
    total_joint_ += network.parent_cardinality(i) * network.cardinality(i);
  }
  for (int i = 0; i < n; ++i) {
    parent_base_[static_cast<size_t>(i)] = total_joint_ + total_parent_;
    total_parent_ += network.parent_cardinality(i);
  }

  // --- Flattened structure metadata for Observe().
  cards_.resize(static_cast<size_t>(n));
  parent_begin_.resize(static_cast<size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    cards_[static_cast<size_t>(i)] = network.cardinality(i);
    parent_begin_[static_cast<size_t>(i)] = static_cast<int64_t>(parent_ids_.size());
    for (int parent : network.dag().parents(i)) {
      parent_ids_.push_back(parent);
      parent_cards_.push_back(network.cardinality(parent));
    }
  }
  parent_begin_[static_cast<size_t>(n)] = static_cast<int64_t>(parent_ids_.size());

  // --- Counter families.
  const int64_t total = total_joint_ + total_parent_;
  const int replicas =
      config_.strategy == TrackingStrategy::kExactMle ? 1 : config_.replicas;
  if (config_.strategy == TrackingStrategy::kExactMle) {
    replicas_.push_back(
        std::make_unique<ExactCounterFamily>(total, config_.num_sites, &comm_));
  } else {
    allocation_ = ComputeAllocation(network, config_.strategy, config_.epsilon);
    // The allocation is relaxed by a constant before parameterizing the
    // counters; see TrackerConfig::allocation_relaxation.
    auto effective = [this](double nu) {
      return static_cast<float>(std::min(0.999, config_.allocation_relaxation * nu));
    };
    std::vector<float> epsilons(static_cast<size_t>(total));
    for (int i = 0; i < n; ++i) {
      const int64_t joint_cells =
          network.parent_cardinality(i) * network.cardinality(i);
      const float joint_eps = effective(allocation_.joint[static_cast<size_t>(i)]);
      for (int64_t c = 0; c < joint_cells; ++c) {
        epsilons[static_cast<size_t>(joint_base_[static_cast<size_t>(i)] + c)] =
            joint_eps;
      }
      const float parent_eps = effective(allocation_.parent[static_cast<size_t>(i)]);
      for (int64_t c = 0; c < network.parent_cardinality(i); ++c) {
        epsilons[static_cast<size_t>(parent_base_[static_cast<size_t>(i)] + c)] =
            parent_eps;
      }
    }
    if (config_.counter_type == CounterType::kDeterministic) {
      for (int r = 0; r < replicas; ++r) {
        replicas_.push_back(std::make_unique<DeterministicCounterFamily>(
            epsilons, config_.num_sites, &comm_));
      }
    } else {
      ApproxCounterOptions options;
      options.num_sites = config_.num_sites;
      options.probability_constant = config_.probability_constant;
      uint64_t seed_state = config_.seed;
      for (int r = 0; r < replicas; ++r) {
        options.seed = SplitMix64(seed_state);
        replicas_.push_back(
            std::make_unique<ApproxCounterFamily>(epsilons, options, &comm_));
      }
    }
  }
}

int64_t MleTracker::ParentRowOf(int variable, const Instance& instance) const {
  const int64_t begin = parent_begin_[static_cast<size_t>(variable)];
  const int64_t end = parent_begin_[static_cast<size_t>(variable) + 1];
  int64_t row = 0;
  for (int64_t j = begin; j < end; ++j) {
    row = row * parent_cards_[static_cast<size_t>(j)] +
          instance[static_cast<size_t>(parent_ids_[static_cast<size_t>(j)])];
  }
  return row;
}

void MleTracker::Observe(const Instance& instance, int site) {
  DSGM_DCHECK(static_cast<int>(instance.size()) == network_->num_variables());
  DSGM_DCHECK(site >= 0 && site < config_.num_sites);
  const int n = network_->num_variables();
  bool any_sent = false;
  for (int i = 0; i < n; ++i) {
    const int64_t row = ParentRowOf(i, instance);
    const int value = instance[static_cast<size_t>(i)];
    DSGM_DCHECK(value >= 0 && value < cards_[static_cast<size_t>(i)]);
    const int64_t joint_id = joint_base_[static_cast<size_t>(i)] +
                             row * cards_[static_cast<size_t>(i)] + value;
    const int64_t parent_id = parent_base_[static_cast<size_t>(i)] + row;
    for (auto& family : replicas_) {
      any_sent |= family->Increment(joint_id, site);
      any_sent |= family->Increment(parent_id, site);
    }
  }
  if (any_sent) ++comm_.wire_messages;
  ++events_observed_;
}

double MleTracker::MedianEstimate(int64_t counter) const {
  if (replicas_.size() == 1) return replicas_[0]->Estimate(counter);
  std::vector<double> estimates;
  estimates.reserve(replicas_.size());
  for (const auto& family : replicas_) estimates.push_back(family->Estimate(counter));
  std::nth_element(estimates.begin(), estimates.begin() + estimates.size() / 2,
                   estimates.end());
  return estimates[estimates.size() / 2];
}

int64_t MleTracker::JointCounterId(int variable, int value,
                                   int64_t parent_row) const {
  DSGM_DCHECK(variable >= 0 && variable < network_->num_variables());
  DSGM_DCHECK(value >= 0 && value < cards_[static_cast<size_t>(variable)]);
  DSGM_DCHECK(parent_row >= 0 &&
              parent_row < network_->parent_cardinality(variable));
  return joint_base_[static_cast<size_t>(variable)] +
         parent_row * cards_[static_cast<size_t>(variable)] + value;
}

int64_t MleTracker::ParentCounterId(int variable, int64_t parent_row) const {
  DSGM_DCHECK(variable >= 0 && variable < network_->num_variables());
  DSGM_DCHECK(parent_row >= 0 &&
              parent_row < network_->parent_cardinality(variable));
  return parent_base_[static_cast<size_t>(variable)] + parent_row;
}

double MleTracker::JointCounterEstimate(int variable, int value,
                                        int64_t parent_row) const {
  return MedianEstimate(JointCounterId(variable, value, parent_row));
}

uint64_t MleTracker::JointCounterExact(int variable, int value,
                                       int64_t parent_row) const {
  return replicas_[0]->ExactTotal(JointCounterId(variable, value, parent_row));
}

double MleTracker::ParentCounterEstimate(int variable, int64_t parent_row) const {
  return MedianEstimate(ParentCounterId(variable, parent_row));
}

uint64_t MleTracker::ParentCounterExact(int variable, int64_t parent_row) const {
  return replicas_[0]->ExactTotal(ParentCounterId(variable, parent_row));
}

double MleTracker::CpdEstimate(int variable, int value, int64_t parent_row) const {
  const double joint = MedianEstimate(JointCounterId(variable, value, parent_row));
  const double parent = MedianEstimate(ParentCounterId(variable, parent_row));
  const double cardinality = cards_[static_cast<size_t>(variable)];
  if (config_.laplace_alpha > 0.0) {
    return (joint + config_.laplace_alpha) /
           (parent + config_.laplace_alpha * cardinality);
  }
  if (parent <= 0.0) {
    // No observed mass for this parent assignment: fall back to uniform
    // (the MLE is undefined here; Section VI sidesteps it by querying only
    // events of probability >= 0.01).
    return 1.0 / cardinality;
  }
  return joint / parent;
}

double MleTracker::JointProbability(const PartialAssignment& assignment) const {
  DSGM_DCHECK(assignment.nodes.size() == assignment.values.size());
  DSGM_DCHECK(std::is_sorted(assignment.nodes.begin(), assignment.nodes.end()));
  double prob = 1.0;
  for (size_t j = 0; j < assignment.nodes.size(); ++j) {
    const int i = assignment.nodes[j];
    // Parent row from the values present in the subset (ancestral closure
    // guarantees every parent is present).
    const int64_t begin = parent_begin_[static_cast<size_t>(i)];
    const int64_t end = parent_begin_[static_cast<size_t>(i) + 1];
    int64_t row = 0;
    for (int64_t u = begin; u < end; ++u) {
      const int parent = parent_ids_[static_cast<size_t>(u)];
      const auto it = std::lower_bound(assignment.nodes.begin(),
                                       assignment.nodes.end(), parent);
      DSGM_DCHECK(it != assignment.nodes.end() && *it == parent)
          << "assignment is not ancestrally closed";
      const size_t pos = static_cast<size_t>(it - assignment.nodes.begin());
      row = row * parent_cards_[static_cast<size_t>(u)] + assignment.values[pos];
    }
    prob *= CpdEstimate(i, assignment.values[j], row);
  }
  return prob;
}

double MleTracker::JointProbability(const Instance& instance) const {
  DSGM_CHECK_EQ(static_cast<int>(instance.size()), network_->num_variables());
  double prob = 1.0;
  for (int i = 0; i < network_->num_variables(); ++i) {
    prob *= CpdEstimate(i, instance[static_cast<size_t>(i)],
                        ParentRowOf(i, instance));
  }
  return prob;
}

uint64_t MleTracker::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& family : replicas_) total += family->MemoryBytes();
  return total;
}

}  // namespace dsgm
