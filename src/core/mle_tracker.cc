#include "core/mle_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "monitor/approx_counter.h"
#include "monitor/deterministic_counter.h"
#include "monitor/exact_counter.h"

namespace dsgm {

MleTracker::MleTracker(const BayesianNetwork& network, const TrackerConfig& config)
    : network_(&network), config_(config), layout_(network) {
  DSGM_CHECK(config_.Validate().ok()) << config_.Validate();
  const int n = network.num_variables();

  // --- Counter families.
  const int64_t total = layout_.total_counters();
  const int replicas =
      config_.strategy == TrackingStrategy::kExactMle ? 1 : config_.replicas;
  if (config_.strategy == TrackingStrategy::kExactMle) {
    replicas_.push_back(
        std::make_unique<ExactCounterFamily>(total, config_.num_sites, &comm_));
  } else {
    allocation_ = ComputeAllocation(network, config_.strategy, config_.epsilon);
    // The allocation is relaxed by a constant before parameterizing the
    // counters; see TrackerConfig::allocation_relaxation.
    auto effective = [this](double nu) {
      return static_cast<float>(std::min(0.999, config_.allocation_relaxation * nu));
    };
    std::vector<float> epsilons(static_cast<size_t>(total));
    for (int i = 0; i < n; ++i) {
      const int64_t joint_cells =
          network.parent_cardinality(i) * network.cardinality(i);
      const float joint_eps = effective(allocation_.joint[static_cast<size_t>(i)]);
      for (int64_t c = 0; c < joint_cells; ++c) {
        epsilons[static_cast<size_t>(
            layout_.joint_base[static_cast<size_t>(i)] + c)] = joint_eps;
      }
      const float parent_eps = effective(allocation_.parent[static_cast<size_t>(i)]);
      for (int64_t c = 0; c < network.parent_cardinality(i); ++c) {
        epsilons[static_cast<size_t>(
            layout_.parent_base[static_cast<size_t>(i)] + c)] = parent_eps;
      }
    }
    if (config_.counter_type == CounterType::kDeterministic) {
      for (int r = 0; r < replicas; ++r) {
        replicas_.push_back(std::make_unique<DeterministicCounterFamily>(
            epsilons, config_.num_sites, &comm_));
      }
    } else {
      ApproxCounterOptions options;
      options.num_sites = config_.num_sites;
      options.probability_constant = config_.probability_constant;
      uint64_t seed_state = config_.seed;
      for (int r = 0; r < replicas; ++r) {
        options.seed = SplitMix64(seed_state);
        replicas_.push_back(
            std::make_unique<ApproxCounterFamily>(epsilons, options, &comm_));
      }
    }
  }
}

void MleTracker::Observe(const Instance& instance, int site) {
  DSGM_DCHECK(static_cast<int>(instance.size()) == network_->num_variables());
  DSGM_DCHECK(site >= 0 && site < config_.num_sites);
  const int n = network_->num_variables();
  bool any_sent = false;
  for (int i = 0; i < n; ++i) {
    const int64_t row = layout_.ParentRowOf(i, instance);
    const int value = instance[static_cast<size_t>(i)];
    DSGM_DCHECK(value >= 0 && value < layout_.cards[static_cast<size_t>(i)]);
    const int64_t joint_id = layout_.JointId(i, row, value);
    const int64_t parent_id = layout_.ParentId(i, row);
    for (auto& family : replicas_) {
      any_sent |= family->Increment(joint_id, site);
      any_sent |= family->Increment(parent_id, site);
    }
  }
  if (any_sent) ++comm_.wire_messages;
  ++events_observed_;
}

double MleTracker::MedianEstimate(int64_t counter) const {
  if (replicas_.size() == 1) return replicas_[0]->Estimate(counter);
  std::vector<double> estimates;
  estimates.reserve(replicas_.size());
  for (const auto& family : replicas_) estimates.push_back(family->Estimate(counter));
  std::nth_element(estimates.begin(), estimates.begin() + estimates.size() / 2,
                   estimates.end());
  return estimates[estimates.size() / 2];
}

int64_t MleTracker::JointCounterId(int variable, int value,
                                   int64_t parent_row) const {
  DSGM_DCHECK(variable >= 0 && variable < network_->num_variables());
  DSGM_DCHECK(value >= 0 && value < layout_.cards[static_cast<size_t>(variable)]);
  DSGM_DCHECK(parent_row >= 0 &&
              parent_row < network_->parent_cardinality(variable));
  return layout_.JointId(variable, parent_row, value);
}

int64_t MleTracker::ParentCounterId(int variable, int64_t parent_row) const {
  DSGM_DCHECK(variable >= 0 && variable < network_->num_variables());
  DSGM_DCHECK(parent_row >= 0 &&
              parent_row < network_->parent_cardinality(variable));
  return layout_.ParentId(variable, parent_row);
}

double MleTracker::JointCounterEstimate(int variable, int value,
                                        int64_t parent_row) const {
  return MedianEstimate(JointCounterId(variable, value, parent_row));
}

uint64_t MleTracker::JointCounterExact(int variable, int value,
                                       int64_t parent_row) const {
  return replicas_[0]->ExactTotal(JointCounterId(variable, value, parent_row));
}

double MleTracker::ParentCounterEstimate(int variable, int64_t parent_row) const {
  return MedianEstimate(ParentCounterId(variable, parent_row));
}

uint64_t MleTracker::ParentCounterExact(int variable, int64_t parent_row) const {
  return replicas_[0]->ExactTotal(ParentCounterId(variable, parent_row));
}

double MleTracker::CpdEstimate(int variable, int value, int64_t parent_row) const {
  const double joint = MedianEstimate(JointCounterId(variable, value, parent_row));
  const double parent = MedianEstimate(ParentCounterId(variable, parent_row));
  const double cardinality = layout_.cards[static_cast<size_t>(variable)];
  if (config_.laplace_alpha > 0.0) {
    return (joint + config_.laplace_alpha) /
           (parent + config_.laplace_alpha * cardinality);
  }
  if (parent <= 0.0) {
    // No observed mass for this parent assignment: fall back to uniform
    // (the MLE is undefined here; Section VI sidesteps it by querying only
    // events of probability >= 0.01).
    return 1.0 / cardinality;
  }
  return joint / parent;
}

double MleTracker::JointProbability(const PartialAssignment& assignment) const {
  return ClosedAssignmentProbability(
      layout_, assignment, [this](int variable, int value, int64_t row) {
        return CpdEstimate(variable, value, row);
      });
}

double MleTracker::JointProbability(const Instance& instance) const {
  DSGM_CHECK_EQ(static_cast<int>(instance.size()), network_->num_variables());
  double prob = 1.0;
  for (int i = 0; i < network_->num_variables(); ++i) {
    prob *= CpdEstimate(i, instance[static_cast<size_t>(i)],
                        layout_.ParentRowOf(i, instance));
  }
  return prob;
}

uint64_t MleTracker::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& family : replicas_) total += family->MemoryBytes();
  return total;
}

}  // namespace dsgm
