// Approximate Bayesian classification over a tracked model (Section V).

#ifndef DSGM_CORE_CLASSIFIER_H_
#define DSGM_CORE_CLASSIFIER_H_

#include <cstdint>
#include <functional>

#include "bayes/network.h"
#include "core/mle_tracker.h"

namespace dsgm {

/// The generic decision rule behind both entry points below: argmax over
/// candidate target values of the Markov-blanket factors supplied by
/// `cpd(variable, value, parent_row)` — the only chain-rule terms that
/// depend on the target's value. Also used by the public ModelView
/// Predict(), so every classifier surface shares one argmax.
int PredictWithCpd(const BayesianNetwork& network, int target,
                   const Instance& evidence,
                   const std::function<double(int, int, int64_t)>& cpd);

/// Predicts the value of `target` given the values of all other variables
/// in `evidence` (evidence[target] is ignored), using the CPD estimates of
/// `tracker`. This is the classifier of Definition 4: the score of a
/// candidate value y is the product of the Markov-blanket factors
///   p̃(y | par(target)) * prod_{c in children(target)} p̃(x_c | par(c)[target<-y]),
/// the only chain-rule terms that depend on the target's value.
int PredictWithTracker(const MleTracker& tracker, int target,
                       const Instance& evidence);

/// Same decision rule evaluated on a network's exact CPDs; used to measure
/// the Bayes-optimal error of the ground-truth model.
int PredictWithNetwork(const BayesianNetwork& network, int target,
                       const Instance& evidence);

}  // namespace dsgm

#endif  // DSGM_CORE_CLASSIFIER_H_
