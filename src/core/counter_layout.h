// Canonical counter-id layout shared by every component that flattens a
// Bayesian network's CPD cells into one dense id space: joint counters
// A_i(x_i, x^par) first (grouped by variable, row-major over parent rows),
// then parent counters A_i(x^par). MleTracker, the cluster site nodes, the
// coordinator's epsilon vector, and the public ModelView all index counters
// through this layout, so an id means the same cell everywhere.

#ifndef DSGM_CORE_COUNTER_LAYOUT_H_
#define DSGM_CORE_COUNTER_LAYOUT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bayes/network.h"
#include "common/check.h"

namespace dsgm {

struct CounterLayout {
  explicit CounterLayout(const BayesianNetwork& network);

  int num_vars = 0;
  /// Domain size J_i per variable.
  std::vector<int32_t> cards;
  /// Parents of variable i are parent_ids[parent_begin[i] ..
  /// parent_begin[i+1]), with their cardinalities alongside.
  std::vector<int32_t> parent_ids;
  std::vector<int32_t> parent_cards;
  std::vector<int64_t> parent_begin;  // size num_vars + 1
  /// First joint / parent counter id of each variable.
  std::vector<int64_t> joint_base;
  std::vector<int64_t> parent_base;
  int64_t total_joint = 0;
  int64_t total_parent = 0;

  int64_t total_counters() const { return total_joint + total_parent; }

  int64_t JointId(int variable, int64_t parent_row, int value) const {
    return joint_base[static_cast<size_t>(variable)] +
           parent_row * cards[static_cast<size_t>(variable)] + value;
  }
  int64_t ParentId(int variable, int64_t parent_row) const {
    return parent_base[static_cast<size_t>(variable)] + parent_row;
  }

  /// Row index of `variable`'s parent assignment under a full instance,
  /// given as a flat values array (one value per variable).
  int64_t ParentRowOf(int variable, const int32_t* values) const {
    const int64_t begin = parent_begin[static_cast<size_t>(variable)];
    const int64_t end = parent_begin[static_cast<size_t>(variable) + 1];
    int64_t row = 0;
    for (int64_t j = begin; j < end; ++j) {
      row = row * parent_cards[static_cast<size_t>(j)] +
            values[parent_ids[static_cast<size_t>(j)]];
    }
    return row;
  }
  int64_t ParentRowOf(int variable, const Instance& instance) const {
    const int64_t begin = parent_begin[static_cast<size_t>(variable)];
    const int64_t end = parent_begin[static_cast<size_t>(variable) + 1];
    int64_t row = 0;
    for (int64_t j = begin; j < end; ++j) {
      row = row * parent_cards[static_cast<size_t>(j)] +
            instance[static_cast<size_t>(parent_ids[static_cast<size_t>(j)])];
    }
    return row;
  }
};

/// Probability of an ancestrally-closed partial assignment under the CPD
/// supplied by `cpd(variable, value, parent_row)` — the chain rule factors
/// over the member variables (Algorithm 3). `assignment.nodes` must be
/// sorted ascending and contain every parent of every member (checked in
/// debug builds). Shared by MleTracker and the public ModelView so the
/// query semantics cannot drift apart.
template <typename CpdFn>
double ClosedAssignmentProbability(const CounterLayout& layout,
                                   const PartialAssignment& assignment,
                                   CpdFn&& cpd) {
  DSGM_DCHECK(assignment.nodes.size() == assignment.values.size());
  DSGM_DCHECK(std::is_sorted(assignment.nodes.begin(), assignment.nodes.end()));
  double prob = 1.0;
  for (size_t j = 0; j < assignment.nodes.size(); ++j) {
    const int i = assignment.nodes[j];
    // Parent row from the values present in the subset (ancestral closure
    // guarantees every parent is present).
    const int64_t begin = layout.parent_begin[static_cast<size_t>(i)];
    const int64_t end = layout.parent_begin[static_cast<size_t>(i) + 1];
    int64_t row = 0;
    for (int64_t u = begin; u < end; ++u) {
      const int parent = layout.parent_ids[static_cast<size_t>(u)];
      const auto it = std::lower_bound(assignment.nodes.begin(),
                                       assignment.nodes.end(), parent);
      DSGM_DCHECK(it != assignment.nodes.end() && *it == parent)
          << "assignment is not ancestrally closed";
      const size_t pos = static_cast<size_t>(it - assignment.nodes.begin());
      row = row * layout.parent_cards[static_cast<size_t>(u)] +
            assignment.values[pos];
    }
    prob *= cpd(i, assignment.values[j], row);
  }
  return prob;
}

}  // namespace dsgm

#endif  // DSGM_CORE_COUNTER_LAYOUT_H_
