#include "core/error_allocation.h"

#include <cmath>

#include "common/check.h"

namespace dsgm {

std::vector<double> AllocateBudget(const std::vector<double>& weights,
                                   double budget) {
  DSGM_CHECK(!weights.empty());
  DSGM_CHECK_GT(budget, 0.0);
  double norm = 0.0;  // sum of w^{2/3}
  for (double w : weights) {
    DSGM_CHECK_GT(w, 0.0) << "allocation weights must be positive";
    norm += std::cbrt(w * w);
  }
  const double scale = budget / std::sqrt(norm);
  std::vector<double> nus;
  nus.reserve(weights.size());
  for (double w : weights) nus.push_back(scale * std::cbrt(w));
  return nus;
}

double AllocationCost(const std::vector<double>& weights,
                      const std::vector<double>& nus) {
  DSGM_CHECK_EQ(weights.size(), nus.size());
  double cost = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    DSGM_CHECK_GT(nus[i], 0.0);
    cost += weights[i] / nus[i];
  }
  return cost;
}

ErrorAllocation ComputeAllocation(const BayesianNetwork& network,
                                  TrackingStrategy strategy, double epsilon) {
  DSGM_CHECK(strategy != TrackingStrategy::kExactMle)
      << "exact counters take no error parameter";
  const int n = network.num_variables();
  ErrorAllocation allocation;
  allocation.joint.resize(static_cast<size_t>(n));
  allocation.parent.resize(static_cast<size_t>(n));

  switch (strategy) {
    case TrackingStrategy::kBaseline: {
      // Section IV-C: every counter within eps/(3n) keeps the worst-case
      // product within e^{±eps} (Fact 1).
      const double share = epsilon / (3.0 * n);
      for (int i = 0; i < n; ++i) {
        allocation.joint[static_cast<size_t>(i)] = share;
        allocation.parent[static_cast<size_t>(i)] = share;
      }
      break;
    }
    case TrackingStrategy::kUniform: {
      // Section IV-D: variance analysis allows eps/(16 sqrt(n)).
      const double share = epsilon / (16.0 * std::sqrt(static_cast<double>(n)));
      for (int i = 0; i < n; ++i) {
        allocation.joint[static_cast<size_t>(i)] = share;
        allocation.parent[static_cast<size_t>(i)] = share;
      }
      break;
    }
    case TrackingStrategy::kNonUniform:
    case TrackingStrategy::kNaiveBayes: {
      if (strategy == TrackingStrategy::kNaiveBayes) {
        // Sanity: two-layer tree rooted at node 0.
        DSGM_CHECK(network.dag().parents(0).empty())
            << "naive-bayes strategy expects node 0 to be the class root";
        for (int i = 1; i < n; ++i) {
          const auto& parents = network.dag().parents(i);
          DSGM_CHECK(parents.size() == 1 && parents[0] == 0)
              << "naive-bayes strategy expects every feature's only parent to be node 0";
        }
      }
      // Equations (7) and (8): weights J_i*K_i for the joint counters and
      // K_i for the parent counters, each with budget eps/16.
      std::vector<double> joint_weights(static_cast<size_t>(n));
      std::vector<double> parent_weights(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        const double cells = static_cast<double>(network.cardinality(i)) *
                             static_cast<double>(network.parent_cardinality(i));
        joint_weights[static_cast<size_t>(i)] = cells;
        parent_weights[static_cast<size_t>(i)] =
            static_cast<double>(network.parent_cardinality(i));
      }
      allocation.joint = AllocateBudget(joint_weights, epsilon / 16.0);
      allocation.parent = AllocateBudget(parent_weights, epsilon / 16.0);
      break;
    }
    case TrackingStrategy::kExactMle:
      break;  // Unreachable; guarded above.
  }
  return allocation;
}

}  // namespace dsgm
