#include "core/tracker_config.h"

#include <algorithm>
#include <cctype>

namespace dsgm {

const char* ToString(TrackingStrategy strategy) {
  switch (strategy) {
    case TrackingStrategy::kExactMle:
      return "exact";
    case TrackingStrategy::kBaseline:
      return "baseline";
    case TrackingStrategy::kUniform:
      return "uniform";
    case TrackingStrategy::kNonUniform:
      return "non-uniform";
    case TrackingStrategy::kNaiveBayes:
      return "naive-bayes";
  }
  return "unknown";
}

const char* ToString(CounterType type) {
  switch (type) {
    case CounterType::kRandomized:
      return "randomized";
    case CounterType::kDeterministic:
      return "deterministic";
  }
  return "unknown";
}

StatusOr<TrackingStrategy> TrackingStrategyFromName(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  key.erase(std::remove(key.begin(), key.end(), '-'), key.end());
  key.erase(std::remove(key.begin(), key.end(), '_'), key.end());
  if (key == "exact" || key == "exactmle") return TrackingStrategy::kExactMle;
  if (key == "baseline") return TrackingStrategy::kBaseline;
  if (key == "uniform") return TrackingStrategy::kUniform;
  if (key == "nonuniform") return TrackingStrategy::kNonUniform;
  if (key == "naivebayes" || key == "nb") return TrackingStrategy::kNaiveBayes;
  return NotFoundError("unknown tracking strategy '" + name + "'");
}

Status TrackerConfig::Validate() const {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return InvalidArgumentError("epsilon must be in (0, 1)");
  }
  if (num_sites < 1) return InvalidArgumentError("num_sites must be >= 1");
  if (replicas < 1) return InvalidArgumentError("replicas must be >= 1");
  if (probability_constant <= 0.0) {
    return InvalidArgumentError("probability_constant must be positive");
  }
  if (allocation_relaxation <= 0.0) {
    return InvalidArgumentError("allocation_relaxation must be positive");
  }
  if (laplace_alpha < 0.0) {
    return InvalidArgumentError("laplace_alpha must be non-negative");
  }
  return Status::Ok();
}

}  // namespace dsgm
