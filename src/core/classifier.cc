#include "core/classifier.h"

#include "common/check.h"

namespace dsgm {
namespace {

/// Shared argmax loop: `factor(variable, value, parent_row)` supplies either
/// tracked estimates or exact CPD entries.
template <typename FactorFn>
int PredictImpl(const BayesianNetwork& network, int target,
                const Instance& evidence, FactorFn&& factor) {
  DSGM_CHECK(target >= 0 && target < network.num_variables());
  DSGM_CHECK_EQ(static_cast<int>(evidence.size()), network.num_variables());

  Instance scratch = evidence;
  const int cardinality = network.cardinality(target);
  int best_value = 0;
  double best_score = -1.0;
  for (int y = 0; y < cardinality; ++y) {
    scratch[static_cast<size_t>(target)] = y;
    double score = factor(target, y, network.ParentIndexOf(target, scratch));
    for (int child : network.dag().children(target)) {
      score *= factor(child, scratch[static_cast<size_t>(child)],
                      network.ParentIndexOf(child, scratch));
      if (score <= 0.0) break;
    }
    if (score > best_score) {
      best_score = score;
      best_value = y;
    }
  }
  return best_value;
}

}  // namespace

int PredictWithCpd(const BayesianNetwork& network, int target,
                   const Instance& evidence,
                   const std::function<double(int, int, int64_t)>& cpd) {
  return PredictImpl(network, target, evidence, cpd);
}

int PredictWithTracker(const MleTracker& tracker, int target,
                       const Instance& evidence) {
  return PredictImpl(tracker.network(), target, evidence,
                     [&tracker](int variable, int value, int64_t row) {
                       return tracker.CpdEstimate(variable, value, row);
                     });
}

int PredictWithNetwork(const BayesianNetwork& network, int target,
                       const Instance& evidence) {
  return PredictImpl(network, target, evidence,
                     [&network](int variable, int value, int64_t row) {
                       return network.cpd(variable).prob(value, row);
                     });
}

}  // namespace dsgm
