// Continuous distributed maintenance of an approximate MLE of a Bayesian
// network — the paper's master algorithms INIT / UPDATE / QUERY
// (Algorithms 1-3) over exact or randomized distributed counters.

#ifndef DSGM_CORE_MLE_TRACKER_H_
#define DSGM_CORE_MLE_TRACKER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bayes/network.h"
#include "core/counter_layout.h"
#include "core/error_allocation.h"
#include "core/tracker_config.h"
#include "monitor/comm_stats.h"
#include "monitor/counter_family.h"

namespace dsgm {

/// Maintains, at a simulated coordinator, the parameters of `network`'s
/// structure learned from a stream of instances arriving at `num_sites`
/// distributed sites.
///
/// For every variable i the tracker owns J_i*K_i joint counters
/// A_i(x_i, x^par) and K_i parent counters A_i(x^par); Observe() increments
/// the two counters of every variable (Algorithm 2), and the query methods
/// estimate CPD entries and joint probabilities from the counter estimates
/// (Algorithm 3). The network object provides only the structure and the
/// domain sizes — its CPDs are never read, they are what is being learned.
///
/// The network must outlive the tracker.
class MleTracker {
 public:
  MleTracker(const BayesianNetwork& network, const TrackerConfig& config);

  MleTracker(const MleTracker&) = delete;
  MleTracker& operator=(const MleTracker&) = delete;

  /// Registers one training instance received at `site` (Algorithm 2).
  void Observe(const Instance& instance, int site);

  /// Estimated CPD entry p̃_i(value | parent_row) = A_i(v,row)/A_i(row).
  /// Returns the uniform 1/J_i when the parent row has no observed mass.
  double CpdEstimate(int variable, int value, int64_t parent_row) const;

  /// Estimated probability of an ancestrally-closed partial assignment
  /// (Algorithm 3 factors over the subset's chain rule).
  double JointProbability(const PartialAssignment& assignment) const;

  /// Estimated probability of a full instance.
  double JointProbability(const Instance& instance) const;

  // --- Observability ---------------------------------------------------

  int64_t events_observed() const { return events_observed_; }
  const CommStats& comm() const { return comm_; }
  const TrackerConfig& config() const { return config_; }
  const BayesianNetwork& network() const { return *network_; }
  /// Empty for kExactMle, otherwise the per-variable error parameters.
  const ErrorAllocation& allocation() const { return allocation_; }
  /// Per-counter-state memory across replicas.
  uint64_t MemoryBytes() const;

  // --- Raw counter access (tests and diagnostics) ----------------------

  /// Median-of-replicas estimate / exact total of a single joint counter.
  double JointCounterEstimate(int variable, int value, int64_t parent_row) const;
  uint64_t JointCounterExact(int variable, int value, int64_t parent_row) const;
  double ParentCounterEstimate(int variable, int64_t parent_row) const;
  uint64_t ParentCounterExact(int variable, int64_t parent_row) const;

  int64_t num_joint_counters() const { return layout_.total_joint; }
  int64_t num_parent_counters() const { return layout_.total_parent; }

 private:
  int64_t JointCounterId(int variable, int value, int64_t parent_row) const;
  int64_t ParentCounterId(int variable, int64_t parent_row) const;
  /// Median across replicas of one counter's estimate.
  double MedianEstimate(int64_t counter) const;

  const BayesianNetwork* network_;
  TrackerConfig config_;
  ErrorAllocation allocation_;
  CommStats comm_;

  // The canonical counter-id flattening (core/counter_layout.h): joint
  // counters first, then parent counters; one id space per replica.
  CounterLayout layout_;

  // One counter family per replica (Theorem 1's median amplification).
  std::vector<std::unique_ptr<CounterFamily>> replicas_;

  int64_t events_observed_ = 0;
};

}  // namespace dsgm

#endif  // DSGM_CORE_MLE_TRACKER_H_
