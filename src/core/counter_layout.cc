#include "core/counter_layout.h"

namespace dsgm {

CounterLayout::CounterLayout(const BayesianNetwork& network)
    : num_vars(network.num_variables()) {
  const size_t n = static_cast<size_t>(num_vars);
  cards.resize(n);
  parent_begin.resize(n + 1);
  joint_base.resize(n);
  parent_base.resize(n);
  for (int i = 0; i < num_vars; ++i) {
    cards[static_cast<size_t>(i)] = network.cardinality(i);
    joint_base[static_cast<size_t>(i)] = total_joint;
    total_joint += network.parent_cardinality(i) * network.cardinality(i);
    parent_begin[static_cast<size_t>(i)] = static_cast<int64_t>(parent_ids.size());
    for (int parent : network.dag().parents(i)) {
      parent_ids.push_back(parent);
      parent_cards.push_back(network.cardinality(parent));
    }
  }
  parent_begin[n] = static_cast<int64_t>(parent_ids.size());
  for (int i = 0; i < num_vars; ++i) {
    parent_base[static_cast<size_t>(i)] = total_joint + total_parent;
    total_parent += network.parent_cardinality(i);
  }
}

}  // namespace dsgm
