#include "net/cluster_transport.h"

#include <utility>

#include "common/check.h"
#include "net/tcp_socket.h"
#include "net/tcp_transport.h"

namespace dsgm {
namespace {

// Queue bounds shared by both transports (loopback uses them directly, TCP
// as inbox capacities) so backpressure behaves identically.
constexpr size_t kEventQueueCapacity = 64;
constexpr size_t kCommandQueueCapacity = 1 << 16;
constexpr size_t kUpdateQueueCapacity = 8192;

class LoopbackTransport : public ClusterTransport {
 public:
  explicit LoopbackTransport(int num_sites)
      : num_sites_(num_sites),
        to_coordinator_(kUpdateQueueCapacity),
        update_channel_(&to_coordinator_) {
    for (int s = 0; s < num_sites; ++s) {
      event_queues_.push_back(
          std::make_unique<BoundedQueue<EventBatch>>(kEventQueueCapacity));
      command_queues_.push_back(
          std::make_unique<BoundedQueue<RoundAdvance>>(kCommandQueueCapacity));
      event_channels_.push_back(
          std::make_unique<QueueChannel<EventBatch>>(event_queues_.back().get()));
      command_channels_.push_back(std::make_unique<QueueChannel<RoundAdvance>>(
          command_queues_.back().get()));
    }
  }

  int num_sites() const override { return num_sites_; }

  CoordinatorEndpoints coordinator() override {
    CoordinatorEndpoints endpoints;
    endpoints.updates = &update_channel_;
    for (int s = 0; s < num_sites_; ++s) {
      endpoints.events.push_back(event_channels_[static_cast<size_t>(s)].get());
      endpoints.commands.push_back(command_channels_[static_cast<size_t>(s)].get());
    }
    return endpoints;
  }

  SiteEndpoints site(int s) override {
    DSGM_CHECK_GE(s, 0);
    DSGM_CHECK_LT(s, num_sites_);
    SiteEndpoints endpoints;
    endpoints.events = event_channels_[static_cast<size_t>(s)].get();
    endpoints.commands = command_channels_[static_cast<size_t>(s)].get();
    endpoints.updates = &update_channel_;
    return endpoints;
  }

 private:
  int num_sites_;
  BoundedQueue<UpdateBundle> to_coordinator_;
  QueueChannel<UpdateBundle> update_channel_;
  std::vector<std::unique_ptr<BoundedQueue<EventBatch>>> event_queues_;
  std::vector<std::unique_ptr<BoundedQueue<RoundAdvance>>> command_queues_;
  std::vector<std::unique_ptr<QueueChannel<EventBatch>>> event_channels_;
  std::vector<std::unique_ptr<QueueChannel<RoundAdvance>>> command_channels_;
};

class LocalTcpTransport : public ClusterTransport {
 public:
  explicit LocalTcpTransport(int num_sites)
      : num_sites_(num_sites),
        merged_updates_(kUpdateQueueCapacity),
        update_channel_(&merged_updates_) {
    StatusOr<TcpListener> listener = TcpListener::Listen(0, num_sites + 8);
    DSGM_CHECK(listener.ok()) << listener.status();

    // Connect every site first (the kernel completes the handshakes against
    // the listen backlog), then accept and pair by the hello's site id.
    site_connections_.resize(static_cast<size_t>(num_sites));
    for (int s = 0; s < num_sites; ++s) {
      StatusOr<TcpSocket> socket =
          TcpSocket::Connect("127.0.0.1", listener->port());
      DSGM_CHECK(socket.ok()) << socket.status();
      auto connection =
          std::make_unique<TcpConnection>(std::move(socket).value());
      DSGM_CHECK(connection->SendHello(s).ok());
      connection->Start();
      site_connections_[static_cast<size_t>(s)] = std::move(connection);
    }
    TcpConnection::Options options;
    options.shared_updates = &merged_updates_;
    options.buffered_commands = true;  // Deadlock avoidance; see Options.
    StatusOr<std::vector<std::unique_ptr<TcpConnection>>> accepted =
        AcceptSiteConnections(&listener.value(), num_sites, options);
    DSGM_CHECK(accepted.ok()) << accepted.status();
    coordinator_connections_ = std::move(accepted).value();
  }

  ~LocalTcpTransport() override { Shutdown(); }

  int num_sites() const override { return num_sites_; }

  CoordinatorEndpoints coordinator() override {
    CoordinatorEndpoints endpoints;
    endpoints.updates = &update_channel_;
    for (int s = 0; s < num_sites_; ++s) {
      endpoints.events.push_back(
          coordinator_connections_[static_cast<size_t>(s)]->events());
      endpoints.commands.push_back(
          coordinator_connections_[static_cast<size_t>(s)]->commands());
    }
    return endpoints;
  }

  SiteEndpoints site(int s) override {
    DSGM_CHECK_GE(s, 0);
    DSGM_CHECK_LT(s, num_sites_);
    SiteEndpoints endpoints;
    TcpConnection* connection = site_connections_[static_cast<size_t>(s)].get();
    endpoints.events = connection->events();
    endpoints.commands = connection->commands();
    endpoints.updates = connection->updates();
    return endpoints;
  }

  TransportStats stats() const override {
    // Count on the coordinator side only; the site side of each socket pair
    // would double every byte.
    TransportStats stats;
    stats.measured = true;
    for (const auto& connection : coordinator_connections_) {
      stats.bytes_down += connection->bytes_sent();
      stats.bytes_up += connection->bytes_received();
    }
    return stats;
  }

  void Shutdown() override {
    for (auto& connection : site_connections_) {
      if (connection != nullptr) connection->Shutdown();
    }
    for (auto& connection : coordinator_connections_) {
      if (connection != nullptr) connection->Shutdown();
    }
  }

 private:
  int num_sites_;
  BoundedQueue<UpdateBundle> merged_updates_;
  QueueChannel<UpdateBundle> update_channel_;
  std::vector<std::unique_ptr<TcpConnection>> site_connections_;
  std::vector<std::unique_ptr<TcpConnection>> coordinator_connections_;
};

}  // namespace

std::unique_ptr<ClusterTransport> MakeLoopbackTransport(int num_sites) {
  DSGM_CHECK_GT(num_sites, 0);
  return std::make_unique<LoopbackTransport>(num_sites);
}

std::unique_ptr<ClusterTransport> MakeLocalTcpTransport(int num_sites) {
  DSGM_CHECK_GT(num_sites, 0);
  return std::make_unique<LocalTcpTransport>(num_sites);
}

}  // namespace dsgm
