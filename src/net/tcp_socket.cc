#include "net/tcp_socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace dsgm {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpSocket::~TcpSocket() { Close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<TcpSocket> TcpSocket::Connect(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return InvalidArgumentError("tcp: bad port " + std::to_string(port));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string target = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("tcp: cannot parse host address '" + target + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("tcp: socket()");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = ErrnoError("tcp: connect(" + target + ":" +
                                     std::to_string(port) + ")");
    ::close(fd);
    return status;
  }
  SetNoDelay(fd);
  return TcpSocket(fd);
}

Status TcpSocket::SendAll(const uint8_t* data, size_t size) {
  if (!valid()) return FailedPreconditionError("tcp: send on closed socket");
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process kill.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("tcp: send()");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status TcpSocket::RecvAll(uint8_t* data, size_t size, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  if (!valid()) return FailedPreconditionError("tcp: recv on closed socket");
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd_, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("tcp: recv()");
    }
    if (n == 0) {
      if (received == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return OutOfRangeError("tcp: connection closed by peer");
      }
      return InternalError("tcp: connection closed mid-frame");
    }
    received += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void TcpSocket::SetRecvTimeout(int timeout_ms) {
  if (fd_ < 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void TcpSocket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status TcpSocket::SetNonBlocking() {
  if (fd_ < 0) return FailedPreconditionError("tcp: fcntl on closed socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return ErrnoError("tcp: fcntl(F_GETFL)");
  if (::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoError("tcp: fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

StatusOr<TcpListener> TcpListener::Listen(int port, int backlog,
                                          const std::string& bind_address) {
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("tcp: bad port " + std::to_string(port));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  const std::string target =
      (bind_address == "localhost" || bind_address.empty()) ? "127.0.0.1"
                                                            : bind_address;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("tcp: cannot parse bind address '" + target + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("tcp: socket()");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = ErrnoError("tcp: bind(:" + std::to_string(port) + ")");
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = ErrnoError("tcp: listen()");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = ErrnoError("tcp: getsockname()");
    ::close(fd);
    return status;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = static_cast<int>(ntohs(addr.sin_port));
  return listener;
}

StatusOr<TcpSocket> TcpListener::Accept() {
  if (!valid()) return FailedPreconditionError("tcp: accept on closed listener");
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return TcpSocket(fd);
    }
    if (errno == EINTR) continue;
    return ErrnoError("tcp: accept()");
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dsgm
