// io_uring readiness backend: multishot IORING_OP_POLL_ADD over the raw
// io_uring_setup/io_uring_enter syscalls (no liburing).
//
// Why POLL and not direct recv/send ops: the transports own their buffers
// and their drain-to-EAGAIN loops; what the Reactor contracts for is
// *readiness*, and multishot poll delivers it with epoll-edge-like
// semantics — completions post on waitqueue wakeups (plus one level check
// at arm time), so an always-writable socket does not storm the CQ the way
// a single-shot (level-triggered) poll re-armed every loop would.
//
// Mechanics:
//   - one ring per backend (256 SQ entries, 4096 CQ entries via
//     IORING_SETUP_CQSIZE so a burst across hundreds of fds cannot overflow)
//   - Add/Modify/Remove prep SQEs but do NOT syscall; Wait publishes the SQ
//     tail and submits the whole batch in the same io_uring_enter that
//     waits for completions (IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG
//     with a timespec — the reason IORING_FEAT_EXT_ARG is required)
//   - user_data packs (generation << 32) | fd; Modify/Remove bump or drop
//     the generation, so CQEs from a cancelled registration are filtered
//     instead of misdelivered to a reused fd number
//   - a CQE without IORING_CQE_F_MORE means the kernel ended the multishot
//     (CQ pressure, or terminal condition); re-arm if the fd is still
//     registered — POLL_ADD level-checks at arm, so no wakeup is lost
//   - Create() probes at runtime: setup (seccomp policies commonly deny
//     it → EPERM), EXT_ARG feature, and an actual multishot arm on an
//     eventfd whose first CQE must carry F_MORE (old kernels reject the
//     flag with -EINVAL). Any failure → nullptr → the caller uses epoll.
//
// Thread contract is the Reactor's: everything after Create runs on the
// loop thread (or the constructing thread before Start — ordered by thread
// creation).

#include "net/io_uring_backend.h"

#if defined(DSGM_HAVE_IO_URING)
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/check.h"
#endif

namespace dsgm {

#if defined(DSGM_HAVE_IO_URING) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter)

namespace {

constexpr unsigned kSqEntries = 256;
constexpr unsigned kCqEntries = 4096;

/// user_data of POLL_REMOVE SQEs: their completions (and the -ENOENT when
/// the target already completed) carry no readiness information.
constexpr uint64_t kCancelUserData = ~0ull;

uint64_t PackUserData(uint32_t gen, int fd) {
  return (static_cast<uint64_t>(gen) << 32) |
         static_cast<uint32_t>(fd);
}

class IoUringBackend final : public IoBackend {
 public:
  static std::unique_ptr<IoBackend> Create() {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = kCqEntries;
    const int ring_fd = static_cast<int>(
        ::syscall(__NR_io_uring_setup, kSqEntries, &params));
    if (ring_fd < 0) return nullptr;  // ENOSYS / EPERM (seccomp) / ...
    if ((params.features & IORING_FEAT_EXT_ARG) == 0) {
      ::close(ring_fd);
      return nullptr;  // No enter-with-timeout; pre-5.11 kernel.
    }
    std::unique_ptr<IoUringBackend> backend(
        new IoUringBackend(ring_fd, params));
    if (!backend->ok_ || !backend->ProbeMultishot()) return nullptr;
    return backend;
  }

  ~IoUringBackend() override {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_size_);
    if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != sq_ring_ptr_) {
      ::munmap(cq_ring_ptr_, cq_ring_size_);
    }
    if (sq_ring_ptr_ != nullptr) ::munmap(sq_ring_ptr_, sq_ring_size_);
    // Closing the ring cancels every in-flight poll and releases its file
    // references.
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "io_uring"; }

  void Add(int fd, uint32_t events) override {
    const uint32_t gen = ++next_gen_;
    DSGM_CHECK(fds_.emplace(fd, FdState{gen, events}).second)
        << "fd registered twice: " << fd;
    ArmPoll(fd, events, gen);
  }

  void Modify(int fd, uint32_t events) override {
    auto it = fds_.find(fd);
    DSGM_CHECK(it != fds_.end()) << "Modify of unregistered fd " << fd;
    CancelPoll(PackUserData(it->second.gen, fd));
    it->second.gen = ++next_gen_;
    it->second.events = events;
    ArmPoll(fd, events, it->second.gen);
  }

  void Remove(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    CancelPoll(PackUserData(it->second.gen, fd));
    fds_.erase(it);
  }

  int Wait(int timeout_ms, std::vector<IoReady>* out) override {
    // Publish every SQE prepped since the last Wait; the enter below both
    // submits the batch and waits, one syscall per loop iteration.
    sq_tail_->store(sq_tail_local_, std::memory_order_release);
    const unsigned to_submit = sq_tail_local_ - sq_submitted_;
    __kernel_timespec ts;
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    io_uring_getevents_arg arg;
    std::memset(&arg, 0, sizeof(arg));
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    const int ret =
        Enter(to_submit, /*min_complete=*/1,
              IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
              sizeof(arg));
    if (ret >= 0) {
      // Returns the submit count even when the wait phase timed out.
      sq_submitted_ += static_cast<unsigned>(ret);
    } else if (errno != ETIME && errno != EINTR && errno != EBUSY) {
      return -1;  // Unrecoverable; the loop exits (mirrors epoll).
    }
    return Reap(out);
  }

 private:
  struct FdState {
    uint32_t gen;
    uint32_t events;
  };

  IoUringBackend(int ring_fd, const io_uring_params& params)
      : ring_fd_(ring_fd) {
    sq_ring_size_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_size_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_size_ = cq_ring_size_ = std::max(sq_ring_size_, cq_ring_size_);
    }
    sq_ring_ptr_ = ::mmap(nullptr, sq_ring_size_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_SQ_RING);
    if (sq_ring_ptr_ == MAP_FAILED) {
      sq_ring_ptr_ = nullptr;
      return;
    }
    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_ptr_ = sq_ring_ptr_;
    } else {
      cq_ring_ptr_ = ::mmap(nullptr, cq_ring_size_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
      if (cq_ring_ptr_ == MAP_FAILED) {
        cq_ring_ptr_ = nullptr;
        return;
      }
    }
    sqes_size_ = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes = ::mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return;
    sqes_ = static_cast<io_uring_sqe*>(sqes);

    // The ring head/tail words are shared with the kernel; atomic access
    // through the mmap'd memory is the documented protocol (acquire loads
    // of the side the kernel writes, release stores of the side we write).
    auto* sq = static_cast<uint8_t*>(sq_ring_ptr_);
    sq_head_ = reinterpret_cast<std::atomic<unsigned>*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_ptr_);
    cq_head_ = reinterpret_cast<std::atomic<unsigned>*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);

    sq_entries_ = params.sq_entries;
    sq_tail_local_ = sq_tail_->load(std::memory_order_relaxed);
    sq_submitted_ = sq_tail_local_;
    cq_head_local_ = cq_head_->load(std::memory_order_relaxed);
    ok_ = true;
  }

  /// Arms a multishot poll on an already-readable eventfd and requires the
  /// first completion to carry IORING_CQE_F_MORE. Kernels without multishot
  /// poll reject the arm with -EINVAL (delivered here as EPOLLERR), and a
  /// single-shot-degraded arm completes without F_MORE — both fail the
  /// probe, and the caller falls back to epoll.
  bool ProbeMultishot() {
    const int efd = ::eventfd(1, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd < 0) return false;
    Add(efd, POLLIN);
    std::vector<IoReady> ready;
    const int n = Wait(/*timeout_ms=*/1000, &ready);
    const bool ok = n == 1 && ready[0].fd == efd &&
                    (ready[0].events & POLLIN) != 0 && saw_multishot_more_;
    Remove(efd);
    // Flush the cancel so the poll's file reference on efd is dropped
    // before the close (timeout 0: submit, return).
    ready.clear();
    Wait(/*timeout_ms=*/0, &ready);
    ::close(efd);
    return ok;
  }

  int Enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            const void* arg, size_t argsz) {
    return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd_,
                                      to_submit, min_complete, flags, arg,
                                      argsz));
  }

  io_uring_sqe* GetSqe() {
    if (sq_tail_local_ - sq_head_->load(std::memory_order_acquire) >=
        sq_entries_) {
      // Ring full mid-batch (a re-registration storm): flush inline.
      sq_tail_->store(sq_tail_local_, std::memory_order_release);
      while (sq_submitted_ != sq_tail_local_) {
        const int ret =
            Enter(sq_tail_local_ - sq_submitted_, 0, 0, nullptr, 0);
        if (ret < 0) {
          DSGM_CHECK(errno == EINTR)
              << "io_uring_enter(submit) failed: errno " << errno;
          continue;
        }
        sq_submitted_ += static_cast<unsigned>(ret);
      }
    }
    const unsigned idx = sq_tail_local_ & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    ++sq_tail_local_;
    return sqe;
  }

  void ArmPoll(int fd, uint32_t events, uint32_t gen) {
    io_uring_sqe* sqe = GetSqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    // EPOLL* and POLL* share values for IN/OUT/ERR/HUP/RDHUP; the interest
    // mask passes through. (poll32_events: the 32-bit field liburing uses.)
    sqe->poll32_events = events;
    sqe->len = IORING_POLL_ADD_MULTI;
    sqe->user_data = PackUserData(gen, fd);
  }

  void CancelPoll(uint64_t target_user_data) {
    io_uring_sqe* sqe = GetSqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->fd = -1;
    sqe->addr = target_user_data;
    sqe->user_data = kCancelUserData;
  }

  int Reap(std::vector<IoReady>* out) {
    int count = 0;
    unsigned head = cq_head_local_;
    const unsigned tail = cq_tail_->load(std::memory_order_acquire);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      ++head;
      count += HandleCqe(cqe, out);
    }
    cq_head_->store(head, std::memory_order_release);
    cq_head_local_ = head;
    return count;
  }

  int HandleCqe(const io_uring_cqe& cqe, std::vector<IoReady>* out) {
    if (cqe.user_data == kCancelUserData) return 0;
    const int fd = static_cast<int>(cqe.user_data & 0xffffffffu);
    const uint32_t gen = static_cast<uint32_t>(cqe.user_data >> 32);
    auto it = fds_.find(fd);
    // Stale: the registration was modified or removed after this CQE was
    // decided (includes the -ECANCELED completion of a cancelled poll).
    if (it == fds_.end() || it->second.gen != gen) return 0;
    if (cqe.res < 0) {
      if (cqe.res == -ECANCELED) return 0;
      // Arm or poll failure: surface as EPOLLERR so the handler tears the
      // connection down; do not re-arm a failing poll.
      out->push_back(IoReady{fd, EPOLLERR});
      return 1;
    }
    if ((cqe.flags & IORING_CQE_F_MORE) != 0) {
      saw_multishot_more_ = true;
    } else {
      // Kernel ended the multishot (CQ pressure or terminal event). Re-arm
      // with the current interest: POLL_ADD level-checks at arm time, so
      // readiness that appeared meanwhile still produces a completion.
      ArmPoll(fd, it->second.events, gen);
    }
    if (cqe.res == 0) return 0;
    out->push_back(IoReady{fd, static_cast<uint32_t>(cqe.res)});
    return 1;
  }

  int ring_fd_ = -1;
  bool ok_ = false;
  bool saw_multishot_more_ = false;

  void* sq_ring_ptr_ = nullptr;
  void* cq_ring_ptr_ = nullptr;
  size_t sq_ring_size_ = 0;
  size_t cq_ring_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_size_ = 0;

  std::atomic<unsigned>* sq_head_ = nullptr;
  std::atomic<unsigned>* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned sq_entries_ = 0;
  unsigned sq_tail_local_ = 0;
  unsigned sq_submitted_ = 0;

  std::atomic<unsigned>* cq_head_ = nullptr;
  std::atomic<unsigned>* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned cq_head_local_ = 0;

  uint32_t next_gen_ = 0;
  std::unordered_map<int, FdState> fds_;
};

}  // namespace

std::unique_ptr<IoBackend> MakeIoUringBackend() {
  return IoUringBackend::Create();
}

#else  // !DSGM_HAVE_IO_URING (or no syscall numbers on this platform)

std::unique_ptr<IoBackend> MakeIoUringBackend() { return nullptr; }

#endif

}  // namespace dsgm
