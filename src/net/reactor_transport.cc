#include "net/reactor_transport.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <utility>

#include "net/cluster_transport.h"
#include "net/compress.h"

namespace dsgm {
namespace {

// One recv()'s worth of fresh buffer space; frames larger than this grow
// the buffer to their exact need (bounded by kMaxFramePayload).
constexpr size_t kReadChunk = 64 << 10;
// Consumed-prefix compaction threshold for the read buffer.
constexpr size_t kCompactThreshold = 256 << 10;

#ifndef NDEBUG
// Set once the thread begins destroying its thread_local objects. The
// canary is first constructed (and therefore destroyed before) SendFrame's
// thread_local scratch buffer, so the flag flips before the scratch dies.
thread_local bool tls_teardown_begun = false;
struct TlsTeardownCanary {
  ~TlsTeardownCanary() { tls_teardown_begun = true; }
};
#endif

}  // namespace

// --- Hello helpers -------------------------------------------------------

Status SendHelloBlocking(TcpSocket* socket, int32_t site) {
  std::vector<uint8_t> bytes;
  AppendFrame(MakeHello(site), &bytes);
  return socket->SendAll(bytes.data(), bytes.size());
}

StatusOr<HelloInfo> ReadHelloInfoBlocking(TcpSocket* socket) {
  // The handshake runs the same conformance machine as the steady state:
  // a fresh kAwaitingHello validator accepts exactly one acceptable-version
  // hello and counts everything else on `net.protocol.violations`.
  ProtocolConformance conformance(ProtocolDirection::kSiteToCoordinator);
  uint8_t prefix[4];
  DSGM_RETURN_IF_ERROR(socket->RecvAll(prefix, 4));
  const uint32_t length = DecodeLengthPrefix(prefix);
  // A hello is a handful of bytes; anything bigger is not a dsgm site.
  if (length > 16) {
    conformance.OnMalformedFrame();
    return InvalidArgumentError("reactor: oversized hello frame");
  }
  std::vector<uint8_t> payload(length);
  DSGM_RETURN_IF_ERROR(socket->RecvAll(payload.data(), payload.size()));
  Frame frame;
  Status decoded = DecodeFramePayload(payload.data(), payload.size(), &frame);
  if (!decoded.ok()) {
    conformance.OnMalformedFrame();
    return decoded;
  }
  switch (conformance.OnFrame(frame)) {
    case ProtocolVerdict::kAccept: {
      HelloInfo info;
      info.site = frame.site;
      info.version = frame.protocol_version;
      info.caps = frame.caps;
      return info;
    }
    case ProtocolVerdict::kVersionMismatch:
      // Same code split as TcpConnection::ReadHello: version mismatch is a
      // deployment error surfaced loudly, anything else a droppable stray.
      return FailedPreconditionError(
          "reactor: protocol version mismatch: peer speaks v" +
          std::to_string(frame.protocol_version) + ", this build speaks v" +
          std::to_string(kProtocolVersion) +
          " — rebuild both ends from the same revision");
    case ProtocolVerdict::kViolation:
      break;
  }
  return InvalidArgumentError("reactor: expected hello frame");
}

StatusOr<int32_t> ReadHelloBlocking(TcpSocket* socket) {
  StatusOr<HelloInfo> info = ReadHelloInfoBlocking(socket);
  if (!info.ok()) return info.status();
  return info->site;
}

// --- ReactorConnection ---------------------------------------------------

ReactorConnection::ReactorConnection(Reactor* reactor, TcpSocket socket,
                                     int site, const Options& options)
    : reactor_(reactor),
      socket_(std::move(socket)),
      site_(site),
      options_(options),
      conformance_(options.receive_direction, options.negotiated_version,
                   ProtocolState::kActive),
      event_inbox_(options.event_capacity),
      command_inbox_(options.command_capacity),
      owned_update_inbox_(options.shared_updates == nullptr
                              ? std::make_unique<FlowQueue<UpdateBundle>>(
                                    options.update_capacity)
                              : nullptr),
      update_inbox_(options.shared_updates != nullptr ? options.shared_updates
                                                      : owned_update_inbox_.get()),
      shared_updates_(options.shared_updates != nullptr),
      events_(this, FrameType::kEventBatch, &event_inbox_),
      commands_(this, FrameType::kRoundAdvance, &command_inbox_),
      updates_(this, FrameType::kUpdateBundle, update_inbox_),
      compress_tx_(options.compress_tx),
      read_pauses_(
          MetricsRegistry::Global().GetCounter("net.reactor.read_pauses")),
      read_resumes_(
          MetricsRegistry::Global().GetCounter("net.reactor.read_resumes")),
      heartbeats_rx_(
          MetricsRegistry::Global().GetCounter("net.reactor.heartbeats_rx")),
      stats_reports_rx_(MetricsRegistry::Global().GetCounter(
          "net.reactor.stats_reports_rx")),
      forged_stats_dropped_(MetricsRegistry::Global().GetCounter(
          "net.reactor.forged_stats_dropped")),
      trace_chunks_rx_(MetricsRegistry::Global().GetCounter(
          "net.reactor.trace_chunks_rx")),
      forged_trace_dropped_(MetricsRegistry::Global().GetCounter(
          "net.reactor.forged_trace_dropped")),
      outbox_bytes_(
          MetricsRegistry::Global().GetGauge("net.reactor.outbox_bytes")) {
  DSGM_CHECK(socket_.SetNonBlocking().ok());
  // A pop that frees space in one of OUR lanes resumes OUR socket. The
  // shared update queue's callback belongs to the owner (it must resume
  // every connection feeding the queue).
  const auto resume = [this] {
    reactor_->Post([this] {
      reactor_->loop_role.AssertHeld();
      ResumeRead();
    });
  };
  event_inbox_.set_space_callback(resume);
  command_inbox_.set_space_callback(resume);
  if (owned_update_inbox_ != nullptr) {
    owned_update_inbox_->set_space_callback(resume);
  }
}

ReactorConnection::~ReactorConnection() {
  // The owner must have stopped the reactor and called ShutdownFromOwner
  // (both idempotent); this is only a backstop for error paths.
  ShutdownFromOwner();
}

void ReactorConnection::Start() {
  reactor_->Post([this] {
    reactor_->loop_role.AssertHeld();
    RegisterOnLoop();
  });
}

void ReactorConnection::RegisterOnLoop() {
  if (read_done_) return;  // Owner shut down before the loop saw us.
  if (options_.receive_direction == ProtocolDirection::kSiteToCoordinator) {
    // The blocking handshake consumed the hello before this connection
    // existed, so the conformance machine never saw it: bind the
    // authenticated site id explicitly so payload-embedded site claims
    // (kStatsReport, kTraceChunk) are checked at the spec layer.
    conformance_.BindSiteId(site_);
  }
  last_rx_nanos_ = NowNanos();
  if (options_.health) options_.health->Touch(site_, last_rx_nanos_);
  reactor_->AddFd(socket_.fd(), EPOLLIN | EPOLLOUT, [this](uint32_t events) {
    reactor_->loop_role.AssertHeld();
    HandleEvents(events);
  });
  if (options_.liveness_timeout_ms > 0) {
    const int period = std::max(1, options_.liveness_timeout_ms / 4);
    liveness_timer_ = reactor_->AddTimer(
        period,
        [this] {
          reactor_->loop_role.AssertHeld();
          CheckLiveness();
        },
        /*periodic=*/true);
    liveness_armed_ = true;
  }
}

void ReactorConnection::HandleEvents(uint32_t events) {
  if (read_done_) return;
  if (events & EPOLLOUT) TryWrite();
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) HandleReadable();
}

bool ReactorConnection::SendFrame(const Frame& frame, bool bypass_backpressure) {
  // Encode OUTSIDE the lock: producers pay only for the byte append, never
  // for each other's encoding or the loop's kernel writes.
  static thread_local std::vector<uint8_t> scratch;
#ifndef NDEBUG
  // Constructed on first use — i.e. after `scratch` — so it is destroyed
  // first during thread exit. A send from a thread_local destructor (the
  // TLS-teardown hazard the orphan-shard flush dodges by parking instead of
  // delivering) would touch `scratch` after or during its destruction;
  // this trips deterministically instead.
  static thread_local TlsTeardownCanary canary;
  (void)canary;
  DSGM_CHECK(!tls_teardown_begun)
      << "SendFrame called during thread-local teardown (site " << site_
      << "); transport sends from TLS destructors are forbidden";
#endif
  scratch.clear();
  if (compress_tx_.load(std::memory_order_relaxed)) {
    // Negotiated v5 with kCapCompression: the codec decides per frame
    // whether the envelope actually pays (eligibility, size floor,
    // profitability) and falls back to the raw encoding otherwise.
    AppendFrameMaybeCompressed(frame, &scratch);
  } else {
    AppendFrame(frame, &scratch);
  }
  bool need_flush = false;
  {
    MutexLock lock(&outbox_mu_);
    if (!bypass_backpressure) {
      while (!broken_ && unsent_bytes_ >= options_.outbox_capacity_bytes) {
        // The loop thread must never park on its own outbox: it is the only
        // thread that can drain it.
        if (reactor_->InLoopThread()) break;
        can_send_.Wait(&lock);
      }
    }
    if (broken_) return false;
    outbox_.insert(outbox_.end(), scratch.begin(), scratch.end());
    unsent_bytes_ += scratch.size();
    outbox_bytes_->Add(static_cast<int64_t>(scratch.size()));
    need_flush = !flush_scheduled_;
    flush_scheduled_ = true;
  }
  if (need_flush) {
    reactor_->Post([this] {
      reactor_->loop_role.AssertHeld();
      TryWrite();
    });
  }
  return true;
}

void ReactorConnection::TryWrite() {
  {
    MutexLock lock(&outbox_mu_);
    flush_scheduled_ = false;
  }
  while (true) {
    if (write_offset_ == write_buffer_.size()) {
      write_buffer_.clear();
      write_offset_ = 0;
      MutexLock lock(&outbox_mu_);
      if (broken_ || outbox_.empty()) return;
      write_buffer_.swap(outbox_);
    }
    // The send syscall runs WITHOUT the lock; only the byte accounting
    // that releases blocked producers retakes it.
    const ssize_t n =
        ::send(socket_.fd(), write_buffer_.data() + write_offset_,
               write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      bytes_sent_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      bool room;
      {
        MutexLock lock(&outbox_mu_);
        unsent_bytes_ -= static_cast<size_t>(n);
        outbox_bytes_->Add(-static_cast<int64_t>(n));
        room = unsent_bytes_ < options_.outbox_capacity_bytes;
      }
      if (room) can_send_.NotifyAll();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // The EPOLLOUT edge resumes this when the socket drains.
    }
    if (n < 0 && errno == EINTR) continue;
    // Peer gone mid-write. The read side surfaces the failure policy; here
    // just stop accepting frames and release anyone blocked on the cap.
    MarkBroken();
    return;
  }
}

void ReactorConnection::MarkBroken() {
  {
    MutexLock lock(&outbox_mu_);
    if (!broken_) {
      broken_ = true;
      // Staged bytes will never be written; keep the process-wide gauge
      // honest (the once-only transition prevents double subtraction).
      outbox_bytes_->Add(-static_cast<int64_t>(unsent_bytes_));
      unsent_bytes_ = 0;
    }
  }
  can_send_.NotifyAll();
}

void ReactorConnection::HandleReadable() {
  if (read_paused_ || read_done_) return;
  while (true) {
    if (read_buffer_.size() - read_size_ < kReadChunk) {
      read_buffer_.resize(read_size_ + kReadChunk);
    }
    const ssize_t n = ::recv(socket_.fd(), read_buffer_.data() + read_size_,
                             read_buffer_.size() - read_size_, 0);
    if (n > 0) {
      read_size_ += static_cast<size_t>(n);
      bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      last_rx_nanos_ = NowNanos();
      if (options_.health) options_.health->Touch(site_, last_rx_nanos_);
      if (!ParseFrames()) return;  // Paused or ended inside.
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      // EOF. Mid-run this is a vanished site when liveness is on; during
      // shutdown the owner has already stopped caring (read_done_).
      EndRead(options_.liveness_timeout_ms > 0
                  ? UnavailableError(
                        "site " + std::to_string(site_) +
                        " closed its connection mid-run")
                  : Status::Ok());
      return;
    }
    EndRead(options_.liveness_timeout_ms > 0
                ? UnavailableError("site " + std::to_string(site_) +
                                   " connection error: " + std::strerror(errno))
                : Status::Ok());
    return;
  }
}

bool ReactorConnection::ParseFrames() {
  while (true) {
    if (pending_frame_.has_value()) {
      Frame frame = std::move(*pending_frame_);
      pending_frame_.reset();
      if (!TryDeliver(&frame)) {
        pending_frame_ = std::move(frame);
        PauseRead();
        return false;
      }
    }
    const size_t available = read_size_ - parse_offset_;
    if (available < 4) break;
    const uint32_t length = DecodeLengthPrefix(read_buffer_.data() + parse_offset_);
    if (length > kMaxFramePayload) {
      conformance_.OnMalformedFrame();
      Trace(TraceEventType::kProtocolViolation, site_, -1);
      EndRead(options_.liveness_timeout_ms > 0
                  ? UnavailableError("site " + std::to_string(site_) +
                                     " sent an oversized frame")
                  : Status::Ok());
      return false;
    }
    if (available - 4 < length) {
      // Make room for the whole frame so the next recv can complete it.
      if (read_buffer_.size() - parse_offset_ < 4 + static_cast<size_t>(length)) {
        read_buffer_.resize(parse_offset_ + 4 + length + kReadChunk);
      }
      break;
    }
    Frame frame;
    const Status decoded = DecodeFramePayload(
        read_buffer_.data() + parse_offset_ + 4, length, &frame);
    if (!decoded.ok()) {
      conformance_.OnMalformedFrame();
      Trace(TraceEventType::kProtocolViolation, site_, -1);
      EndRead(options_.liveness_timeout_ms > 0
                  ? UnavailableError("site " + std::to_string(site_) +
                                     " sent a malformed frame: " +
                                     decoded.message())
                  : Status::Ok());
      return false;
    }
    parse_offset_ += 4 + length;
    // Conformance gates every FRESH frame exactly once, before delivery;
    // the pending_frame_ redelivery above re-offers an already-accepted
    // frame, so it must not (and does not) pass through the table again.
    const char* state_name = ProtocolStateName(conformance_.state());
    if (conformance_.OnFrame(frame) != ProtocolVerdict::kAccept) {
      // Keep the forged-attribution counters honest: the spec layer rejects
      // an observability payload claiming another site's id before delivery
      // ever sees it.
      if (frame.type == FrameType::kStatsReport && frame.stats.site != site_) {
        forged_stats_dropped_->Increment();
      } else if (frame.type == FrameType::kTraceChunk &&
                 frame.trace.site != site_) {
        forged_trace_dropped_->Increment();
      }
      Trace(TraceEventType::kProtocolViolation, site_,
            static_cast<int64_t>(frame.type));
      EndRead(options_.liveness_timeout_ms > 0
                  ? UnavailableError(
                        "site " + std::to_string(site_) +
                        " violated the protocol: " +
                        WireInputName(WireInputOf(frame)) + " in state " +
                        state_name)
                  : Status::Ok());
      return false;
    }
    if (!TryDeliver(&frame)) {
      pending_frame_ = std::move(frame);
      PauseRead();
      return false;
    }
  }
  if (parse_offset_ == read_size_) {
    read_size_ = 0;
    parse_offset_ = 0;
  } else if (parse_offset_ >= kCompactThreshold) {
    std::memmove(read_buffer_.data(), read_buffer_.data() + parse_offset_,
                 read_size_ - parse_offset_);
    read_size_ -= parse_offset_;
    parse_offset_ = 0;
  }
  return true;
}

bool ReactorConnection::TryDeliver(Frame* frame) {
  switch (frame->type) {
    case FrameType::kEventBatch:
      return event_inbox_.TryPush(std::move(frame->batch)) != FlowPush::kFull;
    case FrameType::kRoundAdvance:
      return command_inbox_.TryPush(std::move(frame->advance)) != FlowPush::kFull;
    case FrameType::kUpdateBundle:
      return update_inbox_->TryPush(std::move(frame->bundle)) != FlowPush::kFull;
    case FrameType::kChannelClose:
      switch (frame->channel) {
        case FrameType::kEventBatch:
          event_inbox_.Close();
          break;
        case FrameType::kRoundAdvance:
          command_inbox_.Close();
          break;
        case FrameType::kUpdateBundle:
          // A shared update queue aggregates several connections; losing
          // one lane must not end the stream for the others.
          if (!shared_updates_) update_inbox_->Close();
          break;
        default:
          break;  // Unreachable: the codec validates channel tags.
      }
      return true;
    case FrameType::kHello:
      // The coordinator's v5 capability reply-hello (the only hello the
      // table accepts post-handshake, and only on the coordinator-to-site
      // half): the conformance machine recorded the peer's capability bits;
      // begin compressing eligible sends if both ends opted in.
      if ((conformance_.peer_caps() & kCapCompression) != 0 &&
          WireCompressionEnabled()) {
        compress_tx_.store(true, std::memory_order_relaxed);
      }
      return true;
    case FrameType::kCompressed:
      // Unreachable: the codec unwraps envelopes before a Frame exists
      // (Frame::type holds the inner type, Frame::compressed the flag).
      return true;
    case FrameType::kHeartbeat: {
      // Liveness is credited by the read itself (last_rx_nanos_); the
      // claimed site id is deliberately ignored — a forged id proves
      // nothing beyond this connection being alive.
      heartbeats_rx_->Increment();
      Trace(TraceEventType::kHeartbeat, site_, 0);
      const int64_t now = NowNanos();
      if (options_.trace_board && frame->hb.send_nanos != 0) {
        // NTP leg: T1/T2 are the echo timestamps the site reflected back,
        // T3 the site's send time, T4 this arrival — measured locally,
        // never trusted from the wire.
        options_.trace_board->AddSkewSample(site_, frame->hb.echo_nanos,
                                            frame->hb.echo_recv_nanos,
                                            frame->hb.send_nanos, now);
      }
      if (options_.echo_heartbeats) {
        HeartbeatTimestamps echo;
        echo.send_nanos = now;
        SendFrame(MakeHeartbeat(site_, echo), /*bypass_backpressure=*/true);
      }
      return true;
    }
    case FrameType::kStatsReport:
      stats_reports_rx_->Increment();
      // The spec layer already rejected a mismatched site claim as a
      // protocol violation (the conformance machine is bound to this
      // connection's id); this re-check is a defensive backstop only.
      if (frame->stats.site != site_) {
        forged_stats_dropped_->Increment();
        return true;
      }
      if (options_.health) {
        options_.health->Update(site_, frame->stats.events_processed,
                                frame->stats.updates_sent,
                                frame->stats.syncs_sent,
                                frame->stats.rounds_seen);
      }
      Trace(TraceEventType::kStatsReport, site_,
            frame->stats.events_processed);
      return true;
    case FrameType::kTraceChunk:
      trace_chunks_rx_->Increment();
      if (frame->trace.site != site_) {  // same backstop as stats reports
        forged_trace_dropped_->Increment();
        return true;
      }
      if (options_.trace_board) {
        options_.trace_board->Ingest(site_, frame->trace.first_seq,
                                     frame->trace.events);
      }
      return true;
  }
  return true;
}

void ReactorConnection::PauseRead() {
  if (read_paused_ || read_done_) return;
  read_paused_ = true;
  read_pauses_->Increment();
  // Keep write interest; drop read interest until an inbox frees space.
  reactor_->ModifyFd(socket_.fd(), EPOLLOUT);
}

void ReactorConnection::ResumeRead() {
  if (!read_paused_ || read_done_) return;
  read_paused_ = false;
  read_resumes_->Increment();
  // The pause may have outlived real progress: treat resumption as liveness
  // evidence, since unread bytes were (possibly) waiting on us.
  last_rx_nanos_ = NowNanos();
  if (!ParseFrames()) return;  // Still blocked (or ended): stay paused.
  reactor_->ModifyFd(socket_.fd(), EPOLLIN | EPOLLOUT);
  // An edge may have been missed while unsubscribed; drain manually.
  HandleReadable();
}

void ReactorConnection::CheckLiveness() {
  if (read_done_) return;
  if (read_paused_) {
    // We are the bottleneck (full inbox), not the peer; bytes may be
    // sitting unread in the kernel. Do not count this window against it.
    last_rx_nanos_ = NowNanos();
    return;
  }
  const int64_t elapsed_ms = (NowNanos() - last_rx_nanos_) / 1000000;
  if (elapsed_ms <= options_.liveness_timeout_ms) return;
  EndRead(UnavailableError(
      "site " + std::to_string(site_) + " sent no traffic (not even a "
      "heartbeat) for " + std::to_string(elapsed_ms) +
      " ms, past the " + std::to_string(options_.liveness_timeout_ms) +
      " ms liveness timeout"));
}

void ReactorConnection::EndRead(const Status& failure) {
  if (read_done_) return;
  read_done_ = true;
  reactor_->RemoveFd(socket_.fd());
  if (liveness_armed_) {
    reactor_->CancelTimer(liveness_timer_);
    liveness_armed_ = false;
  }
  MarkBroken();
  // Wake the peer's reader too (it sees EOF) and stop the kernel from
  // buffering more; the fd itself stays open until the owner destroys us.
  socket_.ShutdownBoth();
  event_inbox_.Close();
  command_inbox_.Close();
  if (!shared_updates_) update_inbox_->Close();
  if (!failure.ok() && !failure_reported_) {
    failure_reported_ = true;
    if (options_.health) options_.health->MarkDead(site_);
    Trace(TraceEventType::kSiteFailed, site_, 0);
    if (options_.on_failure) options_.on_failure(failure);
  }
  if (options_.on_read_end) options_.on_read_end();
}

void ReactorConnection::ShutdownFromOwner() {
  if (shutdown_) return;
  shutdown_ = true;
  MarkBroken();
  // The reactor is stopped: its loop role is free, so this thread takes it
  // for the teardown (and debug builds CHECK the loop really exited).
  reactor_->loop_role.Grant();
  read_done_ = true;
  reactor_->loop_role.Yield();
  event_inbox_.Close();
  command_inbox_.Close();
  if (!shared_updates_) update_inbox_->Close();
  socket_.ShutdownBoth();
  socket_.Close();
}

// --- ReactorCoordinator --------------------------------------------------

ReactorCoordinator::ReactorCoordinator(int num_sites, const Options& options)
    : num_sites_(num_sites),
      options_(options),
      reactor_(options.io_backend),
      merged_updates_(8192),
      update_channel_(&merged_updates_),
      connections_(static_cast<size_t>(num_sites)),
      live_reads_(num_sites) {
  DSGM_CHECK_GT(num_sites, 0);
  // Space in the merged queue can unblock ANY paused site connection. The
  // slot lock orders this against AcceptSites still publishing connections.
  merged_updates_.set_space_callback([this] {
    reactor_.Post([this] {
      reactor_.loop_role.AssertHeld();
      MutexLock lock(&connections_mu_);
      for (auto& connection : connections_) {
        if (connection != nullptr) connection->ResumeAfterSharedSpace();
      }
    });
  });
  reactor_.Start();
}

ReactorCoordinator::~ReactorCoordinator() { Shutdown(); }

Status ReactorCoordinator::AcceptSites(TcpListener* listener) {
  // Stray-connection policy mirrors AcceptSiteConnections: port probes and
  // pre-hello deaths are dropped and re-accepted (bounded), a version
  // mismatch or duplicate valid site id is fatal.
  constexpr int kHelloTimeoutMs = 10000;
  int rejects_left = 16 + 4 * num_sites_;
  int accepted = 0;
  while (accepted < num_sites_) {
    StatusOr<TcpSocket> socket = listener->Accept();
    if (!socket.ok()) return socket.status();
    socket->SetRecvTimeout(kHelloTimeoutMs);
    StatusOr<HelloInfo> hello = ReadHelloInfoBlocking(&socket.value());
    if (!hello.ok() &&
        hello.status().code() == StatusCode::kFailedPrecondition) {
      return hello.status();
    }
    if (!hello.ok() || hello->site < 0 || hello->site >= num_sites_) {
      if (--rejects_left < 0) {
        return InvalidArgumentError(
            "too many defective connections while waiting for sites");
      }
      continue;  // Drop the stray connection; keep listening.
    }
    {
      MutexLock lock(&connections_mu_);
      if (connections_[static_cast<size_t>(hello->site)] != nullptr) {
        return InvalidArgumentError("two connections announced site id " +
                                    std::to_string(hello->site));
      }
    }
    socket->SetRecvTimeout(0);
    if (hello->version >= 5) {
      // v5 handshake half two: reply with our own hello so the site learns
      // the coordinator's capability bits (a v4 site would reject it, so
      // v4-negotiated connections never see one). Best-effort: a send
      // failure surfaces through the connection's read side.
      (void)SendHelloBlocking(&socket.value(), hello->site);
    }
    ReactorConnection::Options connection_options;
    connection_options.shared_updates = &merged_updates_;
    connection_options.liveness_timeout_ms = options_.liveness_timeout_ms;
    connection_options.health = options_.health;
    connection_options.trace_board = options_.trace_board;
    connection_options.echo_heartbeats = true;
    connection_options.receive_direction =
        ProtocolDirection::kSiteToCoordinator;
    connection_options.negotiated_version =
        std::min<uint8_t>(kProtocolVersion, hello->version);
    connection_options.compress_tx =
        (hello->caps & kCapCompression) != 0 && WireCompressionEnabled();
    const int site_id = hello->site;
    if (options_.on_site_failure) {
      connection_options.on_failure = [this, site_id](const Status& status) {
        options_.on_site_failure(site_id, status);
      };
    }
    connection_options.on_read_end = [this] {
      // No connection will ever feed the merged queue again: close it so
      // the coordinator drains and exits instead of blocking forever.
      if (live_reads_.fetch_sub(1) == 1) merged_updates_.Close();
    };
    auto connection = std::make_unique<ReactorConnection>(
        &reactor_, std::move(socket).value(), site_id, connection_options);
    connection->Start();
    {
      MutexLock lock(&connections_mu_);
      connections_[static_cast<size_t>(site_id)] = std::move(connection);
    }
    ++accepted;
  }
  return Status::Ok();
}

Channel<EventBatch>* ReactorCoordinator::events(int site) {
  MutexLock lock(&connections_mu_);
  return connections_[static_cast<size_t>(site)]->events();
}

Channel<RoundAdvance>* ReactorCoordinator::commands(int site) {
  MutexLock lock(&connections_mu_);
  return connections_[static_cast<size_t>(site)]->commands();
}

// The annotation pass flagged these: both counters iterated connections_
// bare, racing AcceptSites' slot publication when stats are sampled during
// an ongoing accept (mid-run stats were fine only by accident of call
// order). They take the slot lock now.
uint64_t ReactorCoordinator::bytes_up() const {
  MutexLock lock(&connections_mu_);
  uint64_t total = 0;
  for (const auto& connection : connections_) {
    if (connection != nullptr) total += connection->bytes_received();
  }
  return total;
}

uint64_t ReactorCoordinator::bytes_down() const {
  MutexLock lock(&connections_mu_);
  uint64_t total = 0;
  for (const auto& connection : connections_) {
    if (connection != nullptr) total += connection->bytes_sent();
  }
  return total;
}

void ReactorCoordinator::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  reactor_.Stop();
  {
    MutexLock lock(&connections_mu_);
    for (auto& connection : connections_) {
      if (connection != nullptr) connection->ShutdownFromOwner();
    }
  }
  merged_updates_.Close();
}

// --- In-process transport (conformance suite, kThreads factory) ----------

namespace {

class ReactorTransport : public ClusterTransport {
 public:
  ReactorTransport(int num_sites, IoBackendKind io_backend)
      : num_sites_(num_sites),
        coordinator_reactor_(io_backend),
        site_reactor_(io_backend),
        merged_updates_(8192),
        update_channel_(&merged_updates_) {
    StatusOr<TcpListener> listener = TcpListener::Listen(0, num_sites + 8);
    DSGM_CHECK(listener.ok()) << listener.status();

    std::vector<TcpSocket> site_sockets(static_cast<size_t>(num_sites));
    std::vector<TcpSocket> coordinator_sockets(static_cast<size_t>(num_sites));
    bool compress = false;
    for (int s = 0; s < num_sites; ++s) {
      StatusOr<TcpSocket> socket =
          TcpSocket::Connect("127.0.0.1", listener->port());
      DSGM_CHECK(socket.ok()) << socket.status();
      DSGM_CHECK(SendHelloBlocking(&socket.value(), s).ok());
      site_sockets[static_cast<size_t>(s)] = std::move(socket).value();
    }
    for (int s = 0; s < num_sites; ++s) {
      StatusOr<TcpSocket> socket = listener->Accept();
      DSGM_CHECK(socket.ok()) << socket.status();
      StatusOr<HelloInfo> hello = ReadHelloInfoBlocking(&socket.value());
      DSGM_CHECK(hello.ok()) << hello.status();
      const int32_t site = hello->site;
      DSGM_CHECK(site >= 0 && site < num_sites);
      DSGM_CHECK(coordinator_sockets[static_cast<size_t>(site)].valid() == false);
      // v5 handshake half two: the capability reply-hello. The bytes sit in
      // the socket buffer until the site connection starts reading.
      DSGM_CHECK(SendHelloBlocking(&socket.value(), site).ok());
      compress =
          (hello->caps & kCapCompression) != 0 && WireCompressionEnabled();
      coordinator_sockets[static_cast<size_t>(site)] = std::move(socket).value();
    }

    // coordinator_connections_ needs no lock here: the vector is fully
    // populated before this transport is handed to any consumer, and only a
    // consumer's pop can fire the space callback (Post's queue then orders
    // the loop's read after construction).
    merged_updates_.set_space_callback([this] {
      coordinator_reactor_.Post([this] {
        coordinator_reactor_.loop_role.AssertHeld();
        for (auto& connection : coordinator_connections_) {
          connection->ResumeAfterSharedSpace();
        }
      });
    });
    coordinator_reactor_.Start();
    site_reactor_.Start();

    ReactorConnection::Options coordinator_options;
    coordinator_options.shared_updates = &merged_updates_;
    coordinator_options.receive_direction =
        ProtocolDirection::kSiteToCoordinator;
    coordinator_options.compress_tx = compress;
    ReactorConnection::Options site_options;
    site_options.receive_direction = ProtocolDirection::kCoordinatorToSite;
    // The site side flips its own compress_tx_ when it reads the
    // coordinator's reply-hello (TryDeliver's kHello arm).
    for (int s = 0; s < num_sites; ++s) {
      coordinator_connections_.push_back(std::make_unique<ReactorConnection>(
          &coordinator_reactor_,
          std::move(coordinator_sockets[static_cast<size_t>(s)]), s,
          coordinator_options));
      coordinator_connections_.back()->Start();
      site_connections_.push_back(std::make_unique<ReactorConnection>(
          &site_reactor_, std::move(site_sockets[static_cast<size_t>(s)]), s,
          site_options));
      site_connections_.back()->Start();
    }
  }

  ~ReactorTransport() override { Shutdown(); }

  int num_sites() const override { return num_sites_; }

  CoordinatorEndpoints coordinator() override {
    CoordinatorEndpoints endpoints;
    endpoints.updates = &update_channel_;
    for (int s = 0; s < num_sites_; ++s) {
      endpoints.events.push_back(
          coordinator_connections_[static_cast<size_t>(s)]->events());
      endpoints.commands.push_back(
          coordinator_connections_[static_cast<size_t>(s)]->commands());
    }
    return endpoints;
  }

  SiteEndpoints site(int s) override {
    DSGM_CHECK_GE(s, 0);
    DSGM_CHECK_LT(s, num_sites_);
    SiteEndpoints endpoints;
    ReactorConnection* connection = site_connections_[static_cast<size_t>(s)].get();
    endpoints.events = connection->events();
    endpoints.commands = connection->commands();
    endpoints.updates = connection->updates();
    return endpoints;
  }

  TransportStats stats() const override {
    // Coordinator side only; the site side of each pair would double every
    // byte.
    TransportStats stats;
    stats.measured = true;
    for (const auto& connection : coordinator_connections_) {
      stats.bytes_down += connection->bytes_sent();
      stats.bytes_up += connection->bytes_received();
    }
    return stats;
  }

  void Shutdown() override {
    if (shutdown_) return;
    shutdown_ = true;
    coordinator_reactor_.Stop();
    site_reactor_.Stop();
    for (auto& connection : coordinator_connections_) connection->ShutdownFromOwner();
    for (auto& connection : site_connections_) connection->ShutdownFromOwner();
    merged_updates_.Close();
  }

 private:
  int num_sites_;
  Reactor coordinator_reactor_;
  Reactor site_reactor_;
  FlowQueue<UpdateBundle> merged_updates_;
  FlowChannel<UpdateBundle> update_channel_;
  std::vector<std::unique_ptr<ReactorConnection>> coordinator_connections_;
  std::vector<std::unique_ptr<ReactorConnection>> site_connections_;
  bool shutdown_ = false;
};

}  // namespace

std::unique_ptr<ClusterTransport> MakeReactorTransport(int num_sites) {
  return MakeReactorTransport(num_sites, IoBackendKind::kDefault);
}

std::unique_ptr<ClusterTransport> MakeReactorTransport(int num_sites,
                                                       IoBackendKind io_backend) {
  DSGM_CHECK_GT(num_sites, 0);
  return std::make_unique<ReactorTransport>(num_sites, io_backend);
}

}  // namespace dsgm
