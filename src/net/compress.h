// In-tree LZ byte codec for negotiated wire compression (protocol v5).
//
// Low-cardinality event batches and final-count bundles are varint-packed
// but still carry highly repetitive residual structure (the same few small
// values tile every event). A tiny LZ77 pass over the encoded payload
// recovers that redundancy without any external dependency.
//
// Format (LZ4-flavored, byte-oriented, no framing of its own):
//
//   sequence := token | [literal-length extensions] | literals
//               | offset_lo offset_hi | [match-length extensions]
//   token    := (literal_nibble << 4) | match_nibble
//
// A nibble of 15 is continued by extension bytes (each 255 adds 255; the
// first byte below 255 terminates). Matches copy `nibble + 4` bytes
// (kMinMatch = 4) from `offset` bytes back (1..65535, little-endian). The
// final sequence is literals-only: the block simply ends after its
// literals.
//
// The decompressor is the untrusted surface: it takes the DECLARED
// decompressed size from the frame header, never trusts it (the caller caps
// it at kMaxFramePayload), and fails with a Status on any truncation,
// out-of-window offset, or size mismatch. It never reads or writes outside
// its buffers — fuzzed directly by fuzz_compress_decode and, paired with
// the compressor, by fuzz_compress_roundtrip.

#ifndef DSGM_NET_COMPRESS_H_
#define DSGM_NET_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dsgm {

/// Shortest match the compressor emits / the decompressor expands.
inline constexpr size_t kLzMinMatch = 4;

/// Worst-case compressed size for `n` input bytes (all-literal blocks pay
/// one token plus one extension byte per 255 literals).
constexpr size_t LzCompressBound(size_t n) { return n + n / 255 + 16; }

/// Appends the compressed form of `in[0..in_size)` to `out`. Always
/// succeeds; the output may be larger than the input (callers compare sizes
/// and fall back to the raw encoding — see AppendFrameMaybeCompressed).
void LzCompress(const uint8_t* in, size_t in_size, std::vector<uint8_t>* out);

/// Appends exactly `expected_size` decompressed bytes to `out`, or returns
/// an InvalidArgument Status and leaves `out`'s original contents intact
/// prefix-wise (bytes may have been appended; callers treat any error as
/// fatal for the buffer). `expected_size` is the remote peer's claim — the
/// caller must cap it (kMaxFramePayload) before calling.
Status LzDecompress(const uint8_t* in, size_t in_size, size_t expected_size,
                    std::vector<uint8_t>* out);

/// Process-wide switch consulted by hello construction (capability
/// advertisement) and by the eligible-frame send paths. On by default;
/// benches and tests turn it off to measure the uncompressed baseline and
/// to simulate capability-less peers. Safe to flip at any time (atomic);
/// in-flight connections that already negotiated compression simply stop
/// compressing new frames.
void SetWireCompressionEnabled(bool enabled);
bool WireCompressionEnabled();

}  // namespace dsgm

#endif  // DSGM_NET_COMPRESS_H_
