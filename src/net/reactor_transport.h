// The reactor-based cluster transport: ONE I/O thread (per endpoint group)
// owns every site connection, replacing the thread-per-connection reader
// and writer threads of net/tcp_transport.h. Nonblocking framed reads and
// writes run on a net/reactor.h event loop; each connection keeps a
// per-connection outbox buffer (staged by any thread, drained by the loop)
// and per-lane inboxes with receiver-driven flow control (a full inbox
// pauses reading THAT socket, never the loop).
//
// On top of the loop sits the liveness protocol: sites send kHeartbeat
// frames (net/codec.h) on an interval, the coordinator arms a per-site
// deadline timer, and a site that goes silent past the timeout — or whose
// connection drops mid-run — is declared dead with an UNAVAILABLE status
// naming the site. The session layer's default policy (FailRun) cancels
// the dead site's outstanding syncs and fails the run instead of stalling
// the protocol forever.
//
// Deadlock discipline: RoundAdvance and kChannelClose sends bypass the
// outbox backpressure cap. The coordinator thread is the sole consumer of
// the merged update queue; if it could block staging a command while that
// queue is full, the cycle coordinator -> outbox -> site socket -> site
// inboxes -> site updates -> merged queue -> coordinator would deadlock the
// cluster (the same cycle Options::buffered_commands breaks in the
// thread-per-connection transport). Commands are protocol-bounded (at most
// counters x rounds frames), so the exemption cannot grow the outbox
// without bound. EventBatch and UpdateBundle pushes block on the cap —
// that is the transport's backpressure, mirroring the loopback queues.
//
// Concurrency contracts are compile-checked: loop-only state is guarded by
// the reactor's `loop_role` capability, the cross-thread outbox by
// `outbox_mu_` (see common/thread_annotations.h).

#ifndef DSGM_NET_REACTOR_TRANSPORT_H_
#define DSGM_NET_REACTOR_TRANSPORT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/tracing.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/channel.h"
#include "net/codec.h"
#include "net/protocol_spec.h"
#include "net/reactor.h"
#include "net/tcp_socket.h"
#include "net/wire.h"

namespace dsgm {

enum class FlowPush { kOk, kFull, kClosed };

/// Shared across every FlowQueue instantiation: how often a loop-side
/// delivery found an inbox full (each reject pauses that socket's reads).
inline Counter* FlowQueueFullRejects() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("net.flowqueue.full_rejects");
  return counter;
}

/// A bounded MPMC queue shaped for an event loop producer: pushes never
/// block (TryPush reports kFull) and the first pop that frees space after a
/// failed push fires a registered callback — the loop uses it to resume
/// reading a paused socket. Pop/close semantics match common/queue.h's
/// BoundedQueue (PopBatch blocks until data or close, then drains).
template <typename T>
class FlowQueue {
 public:
  explicit FlowQueue(size_t capacity) : capacity_(capacity) {}

  FlowQueue(const FlowQueue&) = delete;
  FlowQueue& operator=(const FlowQueue&) = delete;

  /// Set before any concurrent use (which is why it needs no guard).
  /// Invoked on the popping (or closing) thread, outside the queue lock.
  void set_space_callback(std::function<void()> fn) { space_cb_ = std::move(fn); }

  /// Moves from `item` only on kOk; on kFull (or kClosed) the caller's
  /// object is left intact, so the event loop can hold the frame and
  /// re-deliver it once the space callback fires.
  FlowPush TryPush(T&& item) DSGM_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_) return FlowPush::kClosed;
      if (items_.size() >= capacity_) {
        starving_ = true;
        FlowQueueFullRejects()->Increment();
        return FlowPush::kFull;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return FlowPush::kOk;
  }

  size_t PopBatch(std::vector<T>* out, size_t max_items) DSGM_EXCLUDES(mu_) {
    Take take;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&lock);
      take = TakeLocked(out, max_items);
    }
    NotifyAfterTake(take);
    return take.count;
  }

  size_t TryPopBatch(std::vector<T>* out, size_t max_items)
      DSGM_EXCLUDES(mu_) {
    Take take;
    {
      MutexLock lock(&mu_);
      take = TakeLocked(out, max_items);
    }
    NotifyAfterTake(take);
    return take.count;
  }

  /// After Close, pushes fail and pops drain then report 0. Also fires the
  /// space callback if a producer was paused on this queue: a reader
  /// waiting to deliver into a queue that will never drain must resume (and
  /// drop) rather than stay paused forever.
  void Close() DSGM_EXCLUDES(mu_) {
    bool fire = false;
    {
      MutexLock lock(&mu_);
      closed_ = true;
      fire = starving_;
      starving_ = false;
    }
    not_empty_.NotifyAll();
    if (fire && space_cb_) space_cb_();
  }

  bool closed() const DSGM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const DSGM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

 private:
  struct Take {
    size_t count = 0;
    bool fire = false;
  };

  Take TakeLocked(std::vector<T>* out, size_t max_items) DSGM_REQUIRES(mu_) {
    Take take;
    take.count = std::min(max_items, items_.size());
    for (size_t i = 0; i < take.count; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    take.fire = starving_ && take.count > 0 && items_.size() < capacity_;
    if (take.fire) starving_ = false;
    return take;
  }

  void NotifyAfterTake(const Take& take) {
    if (take.count > 0) not_empty_.NotifyAll();
    if (take.fire && space_cb_) space_cb_();
  }

  mutable Mutex mu_;
  CondVar not_empty_;
  std::deque<T> items_ DSGM_GUARDED_BY(mu_);
  size_t capacity_;
  bool closed_ DSGM_GUARDED_BY(mu_) = false;
  bool starving_ DSGM_GUARDED_BY(mu_) = false;
  std::function<void()> space_cb_;
};

/// Receive-only Channel view over a FlowQueue — the coordinator's merged
/// update stream. Push aborts: every producer reaches the queue through a
/// socket, never through this endpoint.
template <typename T>
class FlowChannel : public Channel<T> {
 public:
  explicit FlowChannel(FlowQueue<T>* queue) : queue_(queue) {}

  bool Push(T) override {
    DSGM_CHECK(false) << "FlowChannel is receive-only";
    return false;
  }
  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    return queue_->PopBatch(out, max_items);
  }
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) override {
    return queue_->TryPopBatch(out, max_items);
  }
  void Close() override { queue_->Close(); }

 private:
  FlowQueue<T>* queue_;
};

class ReactorConnection;

/// One logical lane of a ReactorConnection; same role as TcpChannel but
/// sends stage bytes into the connection outbox instead of writing the
/// socket inline.
template <typename T>
class ReactorChannel : public Channel<T> {
 public:
  ReactorChannel(ReactorConnection* connection, FrameType type,
                 FlowQueue<T>* inbox)
      : connection_(connection), type_(type), inbox_(inbox) {}

  bool Push(T item) override;
  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    return inbox_->PopBatch(out, max_items);
  }
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) override {
    return inbox_->TryPopBatch(out, max_items);
  }
  void Close() override;

 private:
  ReactorConnection* connection_;
  FrameType type_;
  FlowQueue<T>* inbox_;
  std::atomic<bool> send_closed_{false};
};

/// A framed, bidirectional cluster connection multiplexed on a Reactor.
/// All I/O runs on the reactor loop; SendFrame may be called from any
/// thread (it stages bytes and wakes the loop).
class ReactorConnection {
 public:
  struct Options {
    /// Inbox bounds, matching the loopback/TCP queue capacities so every
    /// transport exerts the same backpressure.
    size_t event_capacity = 64;
    size_t command_capacity = 1 << 16;
    size_t update_capacity = 8192;
    /// Staged-but-unwritten byte cap per connection; non-exempt pushes
    /// block while it is exceeded (a single frame larger than the cap is
    /// still accepted once the outbox drains below it).
    size_t outbox_capacity_bytes = 4u << 20;
    /// Coordinator side: incoming UpdateBundles land in this shared queue.
    /// Lane-close frames and connection loss do NOT close it (other
    /// connections still feed it); the owner closes it.
    FlowQueue<UpdateBundle>* shared_updates = nullptr;
    /// Liveness deadline: >0 arms a per-connection timer that declares the
    /// peer dead after this long without ANY received traffic (heartbeats
    /// count, as does protocol data), and treats a mid-run EOF or read
    /// error as a peer failure too. 0 = a silent or vanished peer just
    /// closes its inboxes (the thread-per-connection semantics).
    int liveness_timeout_ms = 0;
    /// Invoked (reactor thread, at most once) when the peer is declared
    /// dead under liveness_timeout_ms, with the UNAVAILABLE status.
    std::function<void(const Status&)> on_failure;
    /// Invoked (reactor thread, exactly once) when the read side ends for
    /// any reason except owner shutdown: EOF, error, or liveness failure.
    std::function<void()> on_read_end;
    /// Optional per-site health table (owned by the caller, must outlive the
    /// connection). The connection Touch()es it on received traffic, folds
    /// kStatsReport frames into it — after checking the claimed site id
    /// against this connection's authenticated one — and MarkDead()s it on
    /// a read failure.
    SiteHealthBoard* health = nullptr;
    /// Optional cluster trace board (owned by the caller, must outlive the
    /// connection). Validated kTraceChunk frames are Ingest()ed into it and
    /// v4 heartbeat clock samples feed its per-site skew estimator.
    ClusterTraceBoard* trace_board = nullptr;
    /// Coordinator side: reflect every received heartbeat back to the site
    /// (stamped with the local clock) so the site can close the NTP
    /// timestamp loop. Echoes bypass backpressure like commands — they are
    /// heartbeat-cadence bounded, so they cannot grow the outbox unbounded.
    bool echo_heartbeats = false;
    /// Which half of the protocol this connection RECEIVES (see
    /// net/protocol_spec.h). Every decoded frame is checked against the
    /// conformance table for this direction; a violation drops the
    /// connection and counts on `net.protocol.violations`. For the
    /// site-to-coordinator half the conformance machine is bound to this
    /// connection's site id, so a payload claiming another site id
    /// (kStatsReport, kTraceChunk) is a protocol violation, not just a
    /// dropped report.
    ProtocolDirection receive_direction =
        ProtocolDirection::kSiteToCoordinator;
    /// The version the out-of-band handshake negotiated (min of both ends).
    /// The conformance machine runs at this version, so v5-only traffic —
    /// compressed envelopes, capability re-hellos — from a v4-negotiated
    /// peer is a model-checked violation.
    uint8_t negotiated_version = kProtocolVersion;
    /// Start compressing eligible outbound frames immediately (coordinator
    /// side, which learned the peer's capability bits from its hello). The
    /// site side starts false and flips when the coordinator's capability
    /// reply-hello arrives.
    bool compress_tx = false;
  };

  /// Takes a connected, hello-paired socket; makes it nonblocking. `site`
  /// labels diagnostics. The reactor must outlive the connection.
  ReactorConnection(Reactor* reactor, TcpSocket socket, int site,
                    const Options& options);
  ~ReactorConnection();

  ReactorConnection(const ReactorConnection&) = delete;
  ReactorConnection& operator=(const ReactorConnection&) = delete;

  /// Registers with the reactor (posted to the loop). Call exactly once;
  /// the reactor may be started before or after.
  void Start();

  Channel<EventBatch>* events() { return &events_; }
  Channel<RoundAdvance>* commands() { return &commands_; }
  Channel<UpdateBundle>* updates() { return &updates_; }

  int site() const { return site_; }
  uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  /// Encodes `frame` into the outbox and schedules a flush. Blocks while
  /// the outbox is over capacity unless `bypass_backpressure` (commands,
  /// close markers — see the header comment) or called from the loop
  /// thread. Returns false once the connection is broken.
  bool SendFrame(const Frame& frame, bool bypass_backpressure)
      DSGM_EXCLUDES(outbox_mu_);

  /// Teardown with the reactor ALREADY STOPPED (single-threaded): releases
  /// blocked senders, closes inboxes (not a shared update queue) and the
  /// socket. Idempotent. Takes the freed loop role for the loop-state
  /// teardown — which also CHECKs, in debug builds, that the reactor really
  /// was stopped first.
  void ShutdownFromOwner();

  /// Loop-thread only (posted by the shared update queue's owner when that
  /// queue frees space): resume reading if this connection was paused
  /// delivering into it. No-op otherwise.
  void ResumeAfterSharedSpace() DSGM_REQUIRES(reactor_->loop_role) {
    ResumeRead();
  }

 private:
  // Loop-thread methods.
  void RegisterOnLoop() DSGM_REQUIRES(reactor_->loop_role);
  void HandleEvents(uint32_t events) DSGM_REQUIRES(reactor_->loop_role);
  void HandleReadable() DSGM_REQUIRES(reactor_->loop_role);
  void TryWrite() DSGM_REQUIRES(reactor_->loop_role);
  bool ParseFrames() DSGM_REQUIRES(reactor_->loop_role);
  bool TryDeliver(Frame* frame) DSGM_REQUIRES(reactor_->loop_role);
  void ResumeRead() DSGM_REQUIRES(reactor_->loop_role);
  void PauseRead() DSGM_REQUIRES(reactor_->loop_role);
  void CheckLiveness() DSGM_REQUIRES(reactor_->loop_role);
  void EndRead(const Status& failure) DSGM_REQUIRES(reactor_->loop_role);
  /// Marks the send side broken (once), releases blocked senders, and
  /// retires the connection's staged bytes from the outbox gauge.
  void MarkBroken() DSGM_EXCLUDES(outbox_mu_);

  Reactor* reactor_;
  TcpSocket socket_;
  const int site_;
  const Options options_;

  // --- Loop-thread state ---------------------------------------------------
  std::vector<uint8_t> read_buffer_ DSGM_GUARDED_BY(reactor_->loop_role);
  // Bytes valid in read_buffer_.
  size_t read_size_ DSGM_GUARDED_BY(reactor_->loop_role) = 0;
  // Bytes already consumed by the frame parser.
  size_t parse_offset_ DSGM_GUARDED_BY(reactor_->loop_role) = 0;
  // Decoded but undeliverable (inbox full).
  std::optional<Frame> pending_frame_ DSGM_GUARDED_BY(reactor_->loop_role);
  bool read_paused_ DSGM_GUARDED_BY(reactor_->loop_role) = false;
  bool read_done_ DSGM_GUARDED_BY(reactor_->loop_role) = false;
  /// The protocol state machine for this connection's receive half. Starts
  /// kActive: the socket arrives hello-paired (the blocking handshake
  /// consumed the hello before the connection existed). Fed by ParseFrames
  /// on every freshly decoded frame — NOT on pending_frame_ redelivery,
  /// which would double-count transitions.
  ProtocolConformance conformance_ DSGM_GUARDED_BY(reactor_->loop_role);
  bool failure_reported_ DSGM_GUARDED_BY(reactor_->loop_role) = false;
  /// NowNanos() of the last received byte (the liveness clock).
  int64_t last_rx_nanos_ DSGM_GUARDED_BY(reactor_->loop_role) = 0;
  Reactor::TimerId liveness_timer_ DSGM_GUARDED_BY(reactor_->loop_role) = 0;
  bool liveness_armed_ DSGM_GUARDED_BY(reactor_->loop_role) = false;

  // --- Outbox (any thread) -------------------------------------------------
  Mutex outbox_mu_;
  CondVar can_send_;
  // Staged by producers; swapped out by the loop.
  std::vector<uint8_t> outbox_ DSGM_GUARDED_BY(outbox_mu_);
  // outbox_ plus the unwritten write_buffer_ tail.
  size_t unsent_bytes_ DSGM_GUARDED_BY(outbox_mu_) = 0;
  bool flush_scheduled_ DSGM_GUARDED_BY(outbox_mu_) = false;
  bool broken_ DSGM_GUARDED_BY(outbox_mu_) = false;

  // Loop-thread write state: the buffer currently being written, swapped
  // out of outbox_ so send() syscalls never run under outbox_mu_.
  std::vector<uint8_t> write_buffer_ DSGM_GUARDED_BY(reactor_->loop_role);
  size_t write_offset_ DSGM_GUARDED_BY(reactor_->loop_role) = 0;

  FlowQueue<EventBatch> event_inbox_;
  FlowQueue<RoundAdvance> command_inbox_;
  std::unique_ptr<FlowQueue<UpdateBundle>> owned_update_inbox_;
  FlowQueue<UpdateBundle>* update_inbox_;
  const bool shared_updates_;

  ReactorChannel<EventBatch> events_;
  ReactorChannel<RoundAdvance> commands_;
  ReactorChannel<UpdateBundle> updates_;

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  /// Compress eligible outbound frames (negotiated v5 + kCapCompression).
  /// Written at construction or by the loop thread on the capability
  /// reply-hello; read by any sending thread.
  std::atomic<bool> compress_tx_;
  bool shutdown_ = false;  // Owner thread only.

  // Shared process-wide instruments (resolved once per connection).
  Counter* const read_pauses_;
  Counter* const read_resumes_;
  Counter* const heartbeats_rx_;
  Counter* const stats_reports_rx_;
  Counter* const forged_stats_dropped_;
  Counter* const trace_chunks_rx_;
  Counter* const forged_trace_dropped_;
  /// Process-wide staged-but-unwritten outbox bytes, maintained as deltas
  /// under outbox_mu_ so breaks cannot double-subtract.
  Gauge* const outbox_bytes_;
};

/// The coordinator side of a multi-process cluster on one reactor thread:
/// accepts and hello-pairs `num_sites` connections (same stray/version/
/// duplicate handling as AcceptSiteConnections), merges their update lanes,
/// and enforces per-site liveness.
class ReactorCoordinator {
 public:
  struct Options {
    /// 0 disables liveness (a dead site can then stall the run again, like
    /// the thread-per-connection transport).
    int liveness_timeout_ms = 5000;
    /// Reactor thread, at most once per site: the site was declared dead.
    std::function<void(int site, const Status&)> on_site_failure;
    /// Optional live per-site health table; must outlive the coordinator.
    /// Fed from heartbeats/kStatsReport by each connection.
    SiteHealthBoard* health = nullptr;
    /// Optional cluster trace board; must outlive the coordinator. Fed from
    /// kTraceChunk frames and heartbeat clock samples by each connection.
    ClusterTraceBoard* trace_board = nullptr;
    /// Readiness backend for the reactor thread (net/io_backend.h); an
    /// unsatisfiable io_uring request falls back to epoll.
    IoBackendKind io_backend = IoBackendKind::kDefault;
  };

  ReactorCoordinator(int num_sites, const Options& options);
  ~ReactorCoordinator();

  /// Blocks until every site completed its hello handshake. On error the
  /// caller should close the listener and Shutdown().
  Status AcceptSites(TcpListener* listener) DSGM_EXCLUDES(connections_mu_);

  int num_sites() const { return num_sites_; }
  /// The readiness backend the reactor actually runs ("epoll"/"io_uring").
  const char* io_backend_name() const { return reactor_.io_backend_name(); }
  Channel<UpdateBundle>* updates() { return &update_channel_; }
  FlowQueue<UpdateBundle>* merged_updates() { return &merged_updates_; }
  Channel<EventBatch>* events(int site) DSGM_EXCLUDES(connections_mu_);
  Channel<RoundAdvance>* commands(int site) DSGM_EXCLUDES(connections_mu_);

  uint64_t bytes_up() const DSGM_EXCLUDES(connections_mu_);
  uint64_t bytes_down() const DSGM_EXCLUDES(connections_mu_);

  /// Stops the reactor and tears down every connection. Idempotent.
  void Shutdown() DSGM_EXCLUDES(connections_mu_);

 private:
  const int num_sites_;
  const Options options_;
  Reactor reactor_;
  FlowQueue<UpdateBundle> merged_updates_;
  FlowChannel<UpdateBundle> update_channel_;
  /// Guards connections_ slot publication: AcceptSites assigns slots on the
  /// caller's thread while the merged queue's space callback (reactor
  /// thread) may already be iterating them — a liveness failure or a
  /// flooding peer can fire it before the accept loop finishes. The stats
  /// accessors (bytes_up/bytes_down, per-site lanes) take it too: they are
  /// legal during an ongoing AcceptSites.
  mutable Mutex connections_mu_;
  std::vector<std::unique_ptr<ReactorConnection>> connections_
      DSGM_GUARDED_BY(connections_mu_);
  std::atomic<int> live_reads_;
  bool shutdown_ = false;  // Owner thread only.
};

// Blocking hello exchange over a not-yet-reactor-owned socket (shared by
// the in-process transport and ReactorCoordinator::AcceptSites; framing
// identical to TcpConnection's handshake).
Status SendHelloBlocking(TcpSocket* socket, int32_t site);

/// What a blocking hello read learned about the peer: its announced site,
/// the protocol version it speaks (possibly below ours — the connection
/// then runs at min(ours, theirs)), and its capability bits (v5+).
struct HelloInfo {
  int32_t site = -1;
  uint8_t version = kProtocolVersion;
  uint64_t caps = 0;
};
StatusOr<HelloInfo> ReadHelloInfoBlocking(TcpSocket* socket);
StatusOr<int32_t> ReadHelloBlocking(TcpSocket* socket);

template <typename T>
bool ReactorChannel<T>::Push(T item) {
  if (send_closed_.load(std::memory_order_acquire)) return false;
  return connection_->SendFrame(
      MakeFrame(std::move(item)),
      /*bypass_backpressure=*/type_ == FrameType::kRoundAdvance);
}

template <typename T>
void ReactorChannel<T>::Close() {
  if (!send_closed_.exchange(true, std::memory_order_acq_rel)) {
    connection_->SendFrame(MakeChannelClose(type_), /*bypass_backpressure=*/true);
  }
}

}  // namespace dsgm

#endif  // DSGM_NET_REACTOR_TRANSPORT_H_
