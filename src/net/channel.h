// Transport-neutral channel abstraction for the cluster protocol.
//
// A Channel<T> is one unidirectional lane of typed frames with exactly the
// blocking and close semantics of common/queue.h's BoundedQueue: Push
// blocks on backpressure and returns false iff the channel is closed;
// PopBatch blocks until data or close, then drains remaining items before
// reporting 0. The cluster nodes (site_node, coordinator_node) speak only
// through this interface, so the same protocol logic runs over in-process
// queues (QueueChannel) or real sockets (net/tcp_transport.h).

#ifndef DSGM_NET_CHANNEL_H_
#define DSGM_NET_CHANNEL_H_

#include <cstddef>
#include <vector>

#include "common/queue.h"

namespace dsgm {

template <typename T>
class Channel {
 public:
  virtual ~Channel() = default;

  /// Blocks while the channel is backpressured. Returns false iff closed.
  virtual bool Push(T item) = 0;

  /// Blocks until at least one item or close. Appends up to `max_items` to
  /// `out` and returns the number appended (0 means closed and drained).
  virtual size_t PopBatch(std::vector<T>* out, size_t max_items) = 0;

  /// Non-blocking variant: appends whatever is immediately available.
  virtual size_t TryPopBatch(std::vector<T>* out, size_t max_items) = 0;

  /// Closes the sending direction: subsequent pushes fail, the receiver
  /// drains buffered items and then sees 0.
  virtual void Close() = 0;
};

/// In-process loopback: a Channel view over a BoundedQueue. Both endpoints
/// of the lane share the queue, so this is zero-copy and exactly preserves
/// the pre-transport cluster behavior. Does not own the queue.
template <typename T>
class QueueChannel : public Channel<T> {
 public:
  explicit QueueChannel(BoundedQueue<T>* queue) : queue_(queue) {}

  bool Push(T item) override { return queue_->Push(std::move(item)); }
  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    return queue_->PopBatch(out, max_items);
  }
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) override {
    return queue_->TryPopBatch(out, max_items);
  }
  void Close() override { queue_->Close(); }

 private:
  BoundedQueue<T>* queue_;
};

}  // namespace dsgm

#endif  // DSGM_NET_CHANNEL_H_
