// Thin RAII wrappers over POSIX TCP sockets: full-length blocking reads and
// writes, TCP_NODELAY (the protocol is latency-sensitive small frames), and
// Status-based error reporting. No epoll/nonblocking machinery — the
// transport dedicates a reader thread per connection, which keeps the
// semantics identical to the in-process queues.

#ifndef DSGM_NET_TCP_SOCKET_H_
#define DSGM_NET_TCP_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dsgm {

/// One connected stream socket. Movable, closes on destruction.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (host is a dotted quad or "localhost").
  static StatusOr<TcpSocket> Connect(const std::string& host, int port);

  bool valid() const { return fd_ >= 0; }

  /// Writes exactly `size` bytes (looping over partial writes). A peer that
  /// disappeared mid-write is an error, never a SIGPIPE.
  Status SendAll(const uint8_t* data, size_t size);

  /// Reads exactly `size` bytes. EOF before `size` bytes is an error;
  /// `eof_ok` distinguishes "clean EOF before the first byte" (returns
  /// kOutOfRange) from corruption (kInternal).
  Status RecvAll(uint8_t* data, size_t size, bool* clean_eof = nullptr);

  /// Receive timeout in milliseconds (0 restores fully blocking reads).
  /// While set, RecvAll fails instead of blocking forever — used to bound
  /// the accept-side handshake against silent peers.
  void SetRecvTimeout(int timeout_ms);

  /// shutdown(2) both directions without releasing the fd: unblocks a
  /// thread parked in RecvAll (it sees EOF) so the fd can then be closed
  /// safely after the thread is joined.
  void ShutdownBoth();

  /// O_NONBLOCK, for sockets handed to the reactor event loop. SendAll /
  /// RecvAll assume a blocking socket; do not mix them with this.
  Status SetNonBlocking();

  /// The raw descriptor (reactor registration). Ownership stays here.
  int fd() const { return fd_; }

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket bound to the given port (0 picks an ephemeral port,
/// readable via port()). `bind_address` defaults to 127.0.0.1 — the safe
/// localhost-only posture; pass "0.0.0.0" (or a specific interface address)
/// to accept sites from other hosts (the coordinator binaries expose this
/// as --bind).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static StatusOr<TcpListener> Listen(int port, int backlog = 64,
                                      const std::string& bind_address = "127.0.0.1");

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Blocks for the next connection.
  StatusOr<TcpSocket> Accept();

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace dsgm

#endif  // DSGM_NET_TCP_SOCKET_H_
