#include "net/tcp_transport.h"

#include <utility>

#include "common/timer.h"
#include "net/compress.h"

namespace dsgm {

TcpConnection::TcpConnection(TcpSocket socket)
    : TcpConnection(std::move(socket), Options()) {}

TcpConnection::TcpConnection(TcpSocket socket, const Options& options)
    : socket_(std::move(socket)),
      conformance_(options.receive_direction),
      event_inbox_(options.event_capacity),
      command_inbox_(options.command_capacity),
      owned_update_inbox_(options.shared_updates == nullptr
                              ? std::make_unique<BoundedQueue<UpdateBundle>>(
                                    options.update_capacity)
                              : nullptr),
      update_inbox_(options.shared_updates != nullptr ? options.shared_updates
                                                      : owned_update_inbox_.get()),
      shared_updates_(options.shared_updates != nullptr),
      on_reader_exit_(options.on_reader_exit),
      on_heartbeat_(options.on_heartbeat),
      command_outbox_(options.buffered_commands
                          ? std::make_unique<BoundedQueue<Frame>>(
                                options.command_capacity)
                          : nullptr),
      events_(this, FrameType::kEventBatch, &event_inbox_),
      commands_(this, FrameType::kRoundAdvance, &command_inbox_,
                command_outbox_.get()),
      updates_(this, FrameType::kUpdateBundle, update_inbox_) {}

TcpConnection::~TcpConnection() { Shutdown(); }

Status TcpConnection::SendHello(int32_t site) {
  if (!SendFrame(MakeHello(site))) {
    return InternalError("tcp: hello send failed");
  }
  // The connecting side's own hello is its half of the handshake: the peer
  // talks only after reading it, so the receive machine arms to kActive.
  conformance_.OnHelloSent();
  site_label_ = site;
  return Status::Ok();
}

Status TcpConnection::ReadFrame(Frame* out, uint32_t max_payload) {
  uint8_t prefix[4];
  DSGM_RETURN_IF_ERROR(socket_.RecvAll(prefix, 4));
  const uint32_t length = DecodeLengthPrefix(prefix);
  if (length > max_payload) {
    return InvalidArgumentError("tcp: frame payload exceeds limit");
  }
  read_buffer_.resize(length);
  DSGM_RETURN_IF_ERROR(socket_.RecvAll(read_buffer_.data(), read_buffer_.size()));
  bytes_received_.fetch_add(4 + length, std::memory_order_relaxed);
  return DecodeFramePayload(read_buffer_.data(), read_buffer_.size(), out);
}

StatusOr<int32_t> TcpConnection::ReadHello() {
  Frame frame;
  // A hello is a handful of bytes; anything bigger is not a dsgm site.
  const Status read = ReadFrame(&frame, /*max_payload=*/16);
  if (!read.ok()) {
    // kInvalidArgument on the read path is the codec/framing rejecting the
    // bytes — a protocol violation. Everything else (EOF, socket error,
    // recv timeout) is the stream ending, which breaks no contract.
    if (read.code() == StatusCode::kInvalidArgument) {
      conformance_.OnMalformedFrame();
    }
    return read;
  }
  switch (conformance_.OnFrame(frame)) {
    case ProtocolVerdict::kAccept:
      site_label_ = frame.site;
      return frame.site;
    case ProtocolVerdict::kVersionMismatch:
      // kFailedPrecondition distinguishes a genuine dsgm peer speaking
      // another protocol revision (fatal misconfiguration, surfaced to the
      // operator) from line noise (kInvalidArgument, dropped as a stray).
      return FailedPreconditionError(
          "tcp: protocol version mismatch: peer speaks v" +
          std::to_string(frame.protocol_version) + ", this build speaks v" +
          std::to_string(kProtocolVersion) +
          " — rebuild both ends from the same revision");
    case ProtocolVerdict::kViolation:
      break;
  }
  return InvalidArgumentError("tcp: expected hello frame");
}

void TcpConnection::Start() {
  DSGM_CHECK(!started_);
  started_ = true;
  reader_ = std::thread([this] { ReaderLoop(); });
  if (command_outbox_ != nullptr) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

void TcpConnection::WriterLoop() {
  std::vector<Frame> frames;
  while (true) {
    frames.clear();
    if (command_outbox_->PopBatch(&frames, 64) == 0) break;  // Outbox closed.
    for (const Frame& frame : frames) {
      // A failed send means the peer is gone; keep draining so stagers
      // never block on a full outbox nobody will empty.
      SendFrame(frame);
    }
  }
}

bool TcpConnection::SendFrame(const Frame& frame) {
  MutexLock lock(&send_mutex_);
  if (send_broken_) return false;
  send_buffer_.clear();
  if (compress_tx_.load(std::memory_order_relaxed)) {
    // Negotiated v5 with kCapCompression: the codec decides per frame
    // whether the envelope pays and falls back to the raw encoding.
    AppendFrameMaybeCompressed(frame, &send_buffer_);
  } else {
    AppendFrame(frame, &send_buffer_);
  }
  if (!socket_.SendAll(send_buffer_.data(), send_buffer_.size()).ok()) {
    send_broken_ = true;
    return false;
  }
  bytes_sent_.fetch_add(send_buffer_.size(), std::memory_order_relaxed);
  return true;
}

void TcpConnection::ReaderLoop() {
  while (true) {
    Frame frame;
    const Status read = ReadFrame(&frame, kMaxFramePayload);
    if (!read.ok()) {
      // Only a frame the codec/framing rejected (kInvalidArgument) breaks
      // the protocol contract; EOF and socket errors end the stream
      // without a violation.
      if (read.code() == StatusCode::kInvalidArgument) {
        conformance_.OnMalformedFrame();
        Trace(TraceEventType::kProtocolViolation, site_label_, -1);
      } else {
        conformance_.MarkClosed();
      }
      break;
    }
    // Every decoded frame passes the conformance table before delivery: an
    // out-of-state frame (duplicate hello, data after a terminal close,
    // a kind the peer's role never sends) drops the connection.
    if (conformance_.OnFrame(frame) != ProtocolVerdict::kAccept) {
      Trace(TraceEventType::kProtocolViolation, site_label_,
            static_cast<int64_t>(frame.type));
      break;
    }
    switch (frame.type) {
      case FrameType::kEventBatch:
        event_inbox_.Push(std::move(frame.batch));
        break;
      case FrameType::kRoundAdvance:
        command_inbox_.Push(frame.advance);
        break;
      case FrameType::kUpdateBundle:
        update_inbox_->Push(std::move(frame.bundle));
        break;
      case FrameType::kChannelClose:
        switch (frame.channel) {
          case FrameType::kEventBatch:
            event_inbox_.Close();
            break;
          case FrameType::kRoundAdvance:
            command_inbox_.Close();
            break;
          case FrameType::kUpdateBundle:
            if (!shared_updates_) update_inbox_->Close();
            break;
          default:
            break;  // Unreachable: the codec validates channel tags.
        }
        break;
      case FrameType::kHello:
        // The coordinator's v5 capability reply-hello (the only hello the
        // table accepts post-handshake, coordinator-to-site half only):
        // begin compressing eligible sends if both ends opted in.
        if ((conformance_.peer_caps() & kCapCompression) != 0 &&
            WireCompressionEnabled()) {
          EnableCompressedSends();
        }
        break;
      case FrameType::kCompressed:
        // Unreachable: the codec unwraps envelopes before a Frame exists
        // (Frame::type holds the inner type, Frame::compressed the flag).
        break;
      case FrameType::kHeartbeat:
        // The site side of the v4 echo loop: hand the coordinator's echo
        // timestamps (plus the local receive time) to the heartbeat sender
        // so the next beat can reflect them.
        if (on_heartbeat_) on_heartbeat_(frame.hb, NowNanos());
        break;
      case FrameType::kStatsReport:
      case FrameType::kTraceChunk:
        // Observability frames; this transport's blocking reader tracks
        // neither deadlines nor a health/trace board (the reactor transport
        // does), so they are just ignored.
        break;
    }
  }
  CloseInboxes();
  reader_done_.store(true, std::memory_order_release);
  if (on_reader_exit_) on_reader_exit_();
}

void TcpConnection::CloseInboxes() {
  event_inbox_.Close();
  command_inbox_.Close();
  // A shared update queue aggregates several connections; losing one
  // connection must not end the stream for the others.
  if (!shared_updates_) update_inbox_->Close();
}

StatusOr<std::vector<std::unique_ptr<TcpConnection>>> AcceptSiteConnections(
    TcpListener* listener, int num_sites, const TcpConnection::Options& options) {
  std::vector<std::unique_ptr<TcpConnection>> connections(
      static_cast<size_t>(num_sites));
  int accepted = 0;
  // Stray connections (port probes, peers that die before their hello) are
  // dropped and the slot re-accepted rather than failing or hanging the
  // whole cluster; the handshake read is bounded so a silent peer cannot
  // stall the accept loop. A duplicate *valid* site id stays fatal — that
  // is a misconfiguration of real sites, not line noise.
  constexpr int kHelloTimeoutMs = 10000;
  int rejects_left = 16 + 4 * num_sites;
  // Accepted connections validate the site->coordinator half of the
  // protocol regardless of what the caller's options say (callers pass
  // queue wiring, not direction).
  TcpConnection::Options accept_options = options;
  accept_options.receive_direction = ProtocolDirection::kSiteToCoordinator;
  while (accepted < num_sites) {
    StatusOr<TcpSocket> socket = listener->Accept();
    if (!socket.ok()) return socket.status();
    socket->SetRecvTimeout(kHelloTimeoutMs);
    auto connection = std::make_unique<TcpConnection>(
        std::move(socket).value(), accept_options);
    StatusOr<int32_t> site = connection->ReadHello();
    if (!site.ok() &&
        site.status().code() == StatusCode::kFailedPrecondition) {
      // A version-mismatched dsgm site is a deployment error, not a stray
      // probe; dropping it silently would leave both ends hung.
      return site.status();
    }
    if (!site.ok() || *site < 0 || *site >= num_sites) {
      if (--rejects_left < 0) {
        return InvalidArgumentError(
            "too many defective connections while waiting for sites");
      }
      continue;  // Drop the stray connection; keep listening.
    }
    if (connections[static_cast<size_t>(*site)] != nullptr) {
      return InvalidArgumentError("two connections announced site id " +
                                  std::to_string(*site));
    }
    connection->SetRecvTimeout(0);  // Steady-state reads block indefinitely.
    if (connection->negotiated_version() >= 5) {
      // v5 handshake half two: reply with our own hello so the site learns
      // the coordinator's capability bits (v4-negotiated connections never
      // see one — the row is version-gated, and a v4 peer would treat it as
      // a violation).
      connection->SendFrame(MakeHello(*site));
      if ((connection->peer_caps() & kCapCompression) != 0 &&
          WireCompressionEnabled()) {
        connection->EnableCompressedSends();
      }
    }
    connection->Start();
    connections[static_cast<size_t>(*site)] = std::move(connection);
    ++accepted;
  }
  return connections;
}

void TcpConnection::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  {
    MutexLock lock(&send_mutex_);
    send_broken_ = true;
  }
  socket_.ShutdownBoth();
  // Close inboxes BEFORE joining: the reader may be parked in Push on a
  // full inbox nobody will drain anymore, and only a close releases it
  // (the socket shutdown alone can't). At Shutdown time this includes a
  // shared update queue — every connection sharing it is torn down
  // together, and close still lets the owner drain buffered bundles.
  CloseInboxes();
  // Closing a shared update queue exists to release a reader parked in a
  // Push nobody will drain — only possible if this connection's reader ever
  // started. A rejected handshake connection being destroyed must NOT close
  // the queue the real connections still feed.
  if (shared_updates_ && started_) update_inbox_->Close();
  if (command_outbox_ != nullptr) command_outbox_->Close();
  if (writer_.joinable()) writer_.join();
  if (reader_.joinable()) reader_.join();
  socket_.Close();
}

}  // namespace dsgm
