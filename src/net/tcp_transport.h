// TCP implementation of the cluster transport.
//
// One TcpConnection multiplexes the three logical cluster channels over a
// single framed socket: the frame type doubles as the channel id, so no
// extra demux header is needed. Each connection runs one reader thread that
// decodes incoming frames into per-channel BoundedQueues (backpressure is
// the queue bound plus the kernel socket buffers); sends serialize under a
// mutex so the dispatcher and the coordinator can share a connection. On
// the coordinator side the command lane is additionally staged through a
// writer thread (Options::buffered_commands) so the protocol loop never
// waits on that mutex.
//
// Close semantics mirror BoundedQueue: Close() on a channel sends a
// kChannelClose control frame, and the peer's inbox closes when that frame
// arrives (drain-then-fail). A dropped connection closes every inbox.

#ifndef DSGM_NET_TCP_TRANSPORT_H_
#define DSGM_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/queue.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/wire.h"
#include "net/channel.h"
#include "net/codec.h"
#include "net/protocol_spec.h"
#include "net/tcp_socket.h"

namespace dsgm {

class TcpConnection;

/// One logical lane of a TcpConnection. Push encodes and writes to the
/// socket; PopBatch reads from the local inbox fed by the reader thread.
/// Each endpoint uses a lane in only one direction (the cluster protocol is
/// unidirectional per channel), but the object supports both.
template <typename T>
class TcpChannel : public Channel<T> {
 public:
  /// With an `outbox`, Push stages the frame for the connection's writer
  /// thread instead of writing the socket inline (see
  /// Options::buffered_commands).
  TcpChannel(TcpConnection* connection, FrameType type, BoundedQueue<T>* inbox,
             BoundedQueue<Frame>* outbox = nullptr)
      : connection_(connection), type_(type), inbox_(inbox), outbox_(outbox) {}

  bool Push(T item) override;
  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    return inbox_->PopBatch(out, max_items);
  }
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) override {
    return inbox_->TryPopBatch(out, max_items);
  }
  void Close() override;

 private:
  TcpConnection* connection_;
  FrameType type_;
  BoundedQueue<T>* inbox_;
  BoundedQueue<Frame>* outbox_;
  std::atomic<bool> send_closed_{false};
};

/// A framed, bidirectional cluster connection over one TCP socket.
class TcpConnection {
 public:
  struct Options {
    /// Inbox bounds; they match the loopback queue capacities so both
    /// transports exert the same backpressure.
    size_t event_capacity = 64;
    size_t command_capacity = 1 << 16;
    size_t update_capacity = 8192;
    /// When set, incoming UpdateBundles land in this external queue instead
    /// of a per-connection inbox — the coordinator merges all sites' update
    /// lanes into one stream this way. A connection losing its peer does
    /// NOT close the queue (other connections may still feed it), but
    /// Shutdown() does: by then every connection sharing it is being torn
    /// down together.
    BoundedQueue<UpdateBundle>* shared_updates = nullptr;
    /// Invoked exactly once when the reader thread exits (peer EOF, frame
    /// error, or Shutdown). Lets an owner of several connections detect
    /// "no more frames will ever arrive" — e.g. the remote coordinator
    /// closes the shared update queue when the last reader exits, so a
    /// vanished site fails the run instead of hanging it.
    std::function<void()> on_reader_exit;
    /// Site side: invoked (reader thread) for every received kHeartbeat —
    /// the coordinator's v4 echo — with the echo's timestamps and the local
    /// receive time. The heartbeat sender reflects both in the site's next
    /// beat, closing the NTP timestamp loop for skew estimation.
    std::function<void(const HeartbeatTimestamps&, int64_t recv_nanos)>
        on_heartbeat;
    /// Coordinator side only: stage RoundAdvance frames in a bounded outbox
    /// (command_capacity, matching the loopback command queue) drained by a
    /// dedicated writer thread, so pushing a command never blocks on the
    /// send mutex while the event dispatcher holds it mid-write. Without
    /// this, a full event lane + full merged update queue can deadlock the
    /// whole cluster in a cycle through the shared socket mutex.
    bool buffered_commands = false;
    /// Which half of the protocol this connection RECEIVES (see
    /// net/protocol_spec.h). Defaults to the connecting (site) side, which
    /// is what every default-constructed TcpConnection is;
    /// AcceptSiteConnections overrides it for the coordinator side. Every
    /// decoded frame is checked against the conformance table; a violation
    /// ends the reader and counts on `net.protocol.violations`.
    ProtocolDirection receive_direction =
        ProtocolDirection::kCoordinatorToSite;
  };

  explicit TcpConnection(TcpSocket socket);
  TcpConnection(TcpSocket socket, const Options& options);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Handshake, before Start(): the connecting side announces its site id,
  /// the accepting side reads it.
  Status SendHello(int32_t site);
  StatusOr<int32_t> ReadHello();

  /// Post-ReadHello, accepting side: what the hello negotiated. Same
  /// single-thread discipline as the handshake (owner thread, before
  /// Start).
  uint8_t negotiated_version() const { return conformance_.negotiated_version(); }
  uint64_t peer_caps() const { return conformance_.peer_caps(); }

  /// Begin compressing eligible outbound frames (negotiated v5 peer that
  /// advertised kCapCompression). Called by the accepting side after the
  /// handshake, or by the reader thread when the coordinator's capability
  /// reply-hello arrives.
  void EnableCompressedSends() {
    compress_tx_.store(true, std::memory_order_relaxed);
  }

  /// Receive timeout for handshake reads (0 = blocking again); delegates
  /// to the socket. Only meaningful before Start().
  void SetRecvTimeout(int timeout_ms) { socket_.SetRecvTimeout(timeout_ms); }

  /// Spawns the reader thread. Call exactly once, after the handshake.
  void Start();

  Channel<EventBatch>* events() { return &events_; }
  Channel<RoundAdvance>* commands() { return &commands_; }
  Channel<UpdateBundle>* updates() { return &updates_; }

  /// Wire bytes actually written / read, including frame prefixes.
  uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  /// True once the reader thread exited (peer EOF, error, or Shutdown):
  /// no further frames will arrive on this connection.
  bool finished() const { return reader_done_.load(std::memory_order_acquire); }

  /// Unblocks and joins the reader, closes the socket and every inbox.
  /// Idempotent; also runs on destruction.
  void Shutdown();

  /// Encodes and writes one frame. Returns false once the peer is gone.
  bool SendFrame(const Frame& frame) DSGM_EXCLUDES(send_mutex_);

 private:
  void ReaderLoop();
  void WriterLoop();
  void CloseInboxes();
  /// Reads one length-prefixed frame (shared by the handshake and the
  /// reader loop so the framing can never diverge between them).
  Status ReadFrame(Frame* out, uint32_t max_payload);

  TcpSocket socket_;
  Mutex send_mutex_;
  std::vector<uint8_t> send_buffer_ DSGM_GUARDED_BY(send_mutex_);
  std::vector<uint8_t> read_buffer_;  // handshake + reader thread only
  /// Receive-side protocol state machine. Same single-thread discipline as
  /// read_buffer_: the handshake (SendHello/ReadHello, pre-Start) and then
  /// the reader thread, ordered by thread creation.
  ProtocolConformance conformance_;
  bool send_broken_ DSGM_GUARDED_BY(send_mutex_) = false;

  BoundedQueue<EventBatch> event_inbox_;
  BoundedQueue<RoundAdvance> command_inbox_;
  std::unique_ptr<BoundedQueue<UpdateBundle>> owned_update_inbox_;
  BoundedQueue<UpdateBundle>* update_inbox_;
  bool shared_updates_;
  std::function<void()> on_reader_exit_;
  std::function<void(const HeartbeatTimestamps&, int64_t)> on_heartbeat_;
  /// Site id for trace/diagnostic attribution: the peer's hello id on the
  /// accepting side, our own announced id on the connecting side, -1 until
  /// a handshake ran. Same single-thread discipline as conformance_
  /// (handshake, then reader thread, ordered by thread creation).
  int32_t site_label_ = -1;
  std::unique_ptr<BoundedQueue<Frame>> command_outbox_;  // buffered_commands

  TcpChannel<EventBatch> events_;
  TcpChannel<RoundAdvance> commands_;
  TcpChannel<UpdateBundle> updates_;

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<bool> reader_done_{false};
  /// Compress eligible outbound frames (negotiated v5 + kCapCompression).
  std::atomic<bool> compress_tx_{false};

  std::thread reader_;
  std::thread writer_;
  bool started_ = false;   // Owner thread only (handshake/Start sequence).
  bool shutdown_ = false;  // Owner thread only.
};

/// Accepts `num_sites` connections from `listener` and pairs each by its
/// hello-announced site id, which must be unique and in [0, num_sites).
/// Every connection gets `options` (shared update queue, reader-exit hook)
/// and is started. Shared by the in-process LocalTcpTransport (which CHECKs
/// the status) and the multi-process coordinator (which propagates it).
StatusOr<std::vector<std::unique_ptr<TcpConnection>>> AcceptSiteConnections(
    TcpListener* listener, int num_sites, const TcpConnection::Options& options);

template <typename T>
bool TcpChannel<T>::Push(T item) {
  if (send_closed_.load(std::memory_order_acquire)) return false;
  if (outbox_ != nullptr) return outbox_->Push(MakeFrame(std::move(item)));
  return connection_->SendFrame(MakeFrame(std::move(item)));
}

template <typename T>
void TcpChannel<T>::Close() {
  if (!send_closed_.exchange(true, std::memory_order_acq_rel)) {
    // Through the outbox when buffered, so the close marker stays ordered
    // after every staged frame.
    if (outbox_ != nullptr) {
      outbox_->Push(MakeChannelClose(type_));
    } else {
      connection_->SendFrame(MakeChannelClose(type_));
    }
  }
}

}  // namespace dsgm

#endif  // DSGM_NET_TCP_TRANSPORT_H_
