// The cluster wire protocol's connection state machine, as data.
//
// Until now the legal-transition rules of the protocol existed only
// implicitly — a stray check in an accept loop here, an "ignore defensively"
// switch arm there. This header makes the contract explicit and machine
// checkable: a connection is in one of four states, every decodable frame is
// one of eleven wire inputs, and a dense (state × direction × input × version)
// table assigns each combination a verdict. Anything the table does not
// explicitly allow is a violation — the table is built allow-list-first, so
// a new frame kind is rejected everywhere until the spec says otherwise.
//
// The two directions are the two receive machines of one connection:
//
//   kSiteToCoordinator   what a coordinator accepts FROM a site
//       hello first; then update bundles, heartbeats (v>=2), stats reports
//       (v>=3) and trace chunks (v>=4); the site may close its update lane
//       (-> Draining), after which only heartbeats are legal while it
//       lingers for the coordinator's hangup. Sites never send events,
//       commands, or closes for lanes they do not own.
//
//   kCoordinatorToSite   what a site accepts FROM the coordinator
//       hello first; then event batches and round-advance commands, plus
//       heartbeat echoes since v4 (the coordinator reflects each site
//       heartbeat so the site can close the NTP timestamp loop) and, since
//       v5, one state-preserving capability reply-hello and compressed
//       event-batch envelopes on connections that negotiated v5. The
//       event lane may close while commands continue (dispatcher finishes
//       before the protocol loop); closing the command lane is the
//       coordinator's final word (-> Draining), after which only straggler
//       events, the event-lane close, and heartbeat echoes are legal.
//       Coordinators never send updates, stats, or trace chunks.
//
// A violation is terminal (-> Closed, where everything is a violation), is
// counted on the process-wide `net.protocol.violations` counter, and makes
// the transport drop the connection. tests/protocol_spec_test.cc
// model-checks the table by exhaustive enumeration: totality, hello before
// anything, nothing after close, version gates, reachability.

#ifndef DSGM_NET_PROTOCOL_SPEC_H_
#define DSGM_NET_PROTOCOL_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/codec.h"

namespace dsgm {

/// Per-connection receive states.
enum class ProtocolState : uint8_t {
  kAwaitingHello = 0,  // nothing received yet; only a hello is legal
  kActive = 1,         // handshake done; data and control flow freely
  kDraining = 2,       // the sender closed its terminal lane; linger only
  kClosed = 3,         // terminal; every further frame is a violation
};
inline constexpr size_t kNumProtocolStates = 4;
inline constexpr ProtocolState kAllProtocolStates[kNumProtocolStates] = {
    ProtocolState::kAwaitingHello, ProtocolState::kActive,
    ProtocolState::kDraining, ProtocolState::kClosed};

/// Which half of the connection this machine validates (who is RECEIVING).
enum class ProtocolDirection : uint8_t {
  kSiteToCoordinator = 0,  // coordinator validating a site's frames
  kCoordinatorToSite = 1,  // site validating the coordinator's frames
};
inline constexpr size_t kNumProtocolDirections = 2;
inline constexpr ProtocolDirection
    kAllProtocolDirections[kNumProtocolDirections] = {
        ProtocolDirection::kSiteToCoordinator,
        ProtocolDirection::kCoordinatorToSite};

/// Every distinct input a decoded frame can present to the state machine.
/// kChannelClose fans out per closed lane: closing the update lane is a
/// terminal act, closing the event lane is not, so they cannot share a row.
enum class WireInput : uint8_t {
  kInUpdateBundle = 0,
  kInRoundAdvance = 1,
  kInEventBatch = 2,
  kInCloseUpdates = 3,   // kChannelClose(kUpdateBundle)
  kInCloseCommands = 4,  // kChannelClose(kRoundAdvance)
  kInCloseEvents = 5,    // kChannelClose(kEventBatch)
  kInHello = 6,
  kInHeartbeat = 7,
  kInStatsReport = 8,
  kInTraceChunk = 9,
  /// The v5 compression envelope AS AN ENVELOPE: a frame whose bytes
  /// arrived wrapped (Frame::compressed) is checked against this input
  /// first — legal only on connections that negotiated v5 — and then
  /// against its inner input as usual. A v4-negotiated peer sending a
  /// wrapped frame therefore violates here, before the inner frame is even
  /// considered.
  kInCompressed = 10,
};
inline constexpr size_t kNumWireInputs = 11;
inline constexpr WireInput kAllWireInputs[kNumWireInputs] = {
    WireInput::kInUpdateBundle, WireInput::kInRoundAdvance,
    WireInput::kInEventBatch,   WireInput::kInCloseUpdates,
    WireInput::kInCloseCommands, WireInput::kInCloseEvents,
    WireInput::kInHello,        WireInput::kInHeartbeat,
    WireInput::kInStatsReport,  WireInput::kInTraceChunk,
    WireInput::kInCompressed};

/// The oldest protocol revision the table covers; kProtocolVersion
/// (net/codec.h) is the newest. The version axis encodes the gates: a v1
/// connection may not carry heartbeats, a v2 one may not carry stats.
inline constexpr uint8_t kMinProtocolVersion = 1;
inline constexpr size_t kNumProtocolVersions =
    static_cast<size_t>(kProtocolVersion) - kMinProtocolVersion + 1;

enum class ProtocolVerdict : uint8_t {
  kAccept = 0,
  kViolation = 1,
  /// Only from ProtocolConformance::OnFrame, for a hello whose version is
  /// not the one this endpoint speaks: counted as a violation, but the
  /// transport surfaces it as a deployment error (FailedPrecondition)
  /// instead of dropping it as line noise.
  kVersionMismatch = 2,
};

struct FrameRule {
  ProtocolVerdict verdict = ProtocolVerdict::kViolation;
  ProtocolState next = ProtocolState::kClosed;
};

/// The table lookup itself. Versions outside
/// [kMinProtocolVersion, kProtocolVersion] get the default violation rule.
const FrameRule& LookupRule(ProtocolState state, ProtocolDirection direction,
                            WireInput input, uint8_t version);

/// Classifies a decoded frame (kChannelClose fans out by frame.channel).
WireInput WireInputOf(const Frame& frame);

const char* ProtocolStateName(ProtocolState state);
const char* ProtocolDirectionName(ProtocolDirection direction);
const char* WireInputName(WireInput input);

/// The process-wide counter every conformance violation increments.
inline constexpr char kProtocolViolationsMetric[] = "net.protocol.violations";

/// Per-connection validator over the table. Single-threaded by contract:
/// each transport consults it from the one thread that decodes that
/// connection's frames (the reactor loop, a TcpConnection's reader, or the
/// owner during the blocking handshake — handshake and reader are ordered
/// by thread creation).
class ProtocolConformance {
 public:
  /// `version` is the highest revision this endpoint speaks on this
  /// connection. A hello negotiates the connection down to
  /// min(version, peer) when the peer's version is acceptable — equal to
  /// ours, or in [kMinNegotiableVersion, ours) — and every subsequent table
  /// lookup uses the NEGOTIATED version, so v5-only traffic (compressed
  /// envelopes, capability re-hellos) from a v4-negotiated peer violates.
  /// Pass an explicit `version` for connections whose handshake happened
  /// out-of-band (the reactor transport's accept loop constructs them
  /// kActive at the version it read from the hello); `initial` is kActive
  /// in that case.
  explicit ProtocolConformance(
      ProtocolDirection direction, uint8_t version = kProtocolVersion,
      ProtocolState initial = ProtocolState::kAwaitingHello);

  /// Feeds one decoded frame through the table; advances the state. On
  /// kViolation/kVersionMismatch the state is kClosed and the caller must
  /// drop the connection.
  ProtocolVerdict OnFrame(const Frame& frame);

  /// A frame that failed to decode at all (bad bytes on the protocol port)
  /// breaks the contract just as much as an out-of-state one: counted and
  /// terminal.
  ProtocolVerdict OnMalformedFrame();

  /// Connecting side: its own hello is the handshake, so sending it arms
  /// the receive machine (the peer talks only after reading the hello).
  void OnHelloSent();

  /// Binds the connection's authenticated site id so payload-embedded site
  /// claims can be checked at the spec layer: a kStatsReport or kTraceChunk
  /// whose payload names a different site than the connection's hello is a
  /// protocol violation (forged attribution), terminal like any other.
  /// Called automatically when OnFrame accepts a hello; call it explicitly
  /// for connections constructed kActive (out-of-band handshake). Unbound
  /// connections (site id < 0) skip the payload check.
  void BindSiteId(int32_t site) { bound_site_ = site; }

  /// Orderly end of the byte stream (EOF, owner shutdown). Not a violation.
  void MarkClosed();

  ProtocolState state() const { return state_; }
  ProtocolDirection direction() const { return direction_; }
  uint8_t version() const { return version_; }
  /// min(version(), last accepted hello's version); == version() before any
  /// hello is seen. Table lookups run at this version.
  uint8_t negotiated_version() const { return negotiated_version_; }
  /// Capability bits from the last accepted hello (0 before one, and for
  /// v4 peers, whose hellos carry no caps).
  uint64_t peer_caps() const { return peer_caps_; }
  int32_t bound_site() const { return bound_site_; }
  /// Violations charged to THIS connection (the metric is process-wide).
  uint64_t violations() const { return violations_; }

 private:
  ProtocolVerdict CountViolation(ProtocolVerdict verdict);
  bool VersionAcceptable(uint8_t peer_version) const;

  const ProtocolDirection direction_;
  const uint8_t version_;
  uint8_t negotiated_version_;
  uint64_t peer_caps_ = 0;
  ProtocolState state_;
  int32_t bound_site_ = -1;
  uint64_t violations_ = 0;
  Counter* const violations_metric_;
};

/// A conformance-checked framed stream parser: the framing rule of the
/// transports' read paths (u32-LE length prefix, kMaxFramePayload cap,
/// DecodeFramePayload) fused with a ProtocolConformance. Used by the
/// fuzz_protocol_stream harness to pound the accept/read contract with
/// adversarial byte streams, and unit-testable without sockets.
class ProtocolStreamChecker {
 public:
  explicit ProtocolStreamChecker(
      ProtocolDirection direction,
      ProtocolState initial = ProtocolState::kAwaitingHello);

  /// Appends bytes and parses every complete frame. The first framing,
  /// codec, or conformance error is sticky — like a transport, the checker
  /// drops the connection rather than resynchronizing.
  Status Append(const uint8_t* data, size_t size);

  const ProtocolConformance& conformance() const { return conformance_; }
  uint64_t frames_accepted() const { return frames_accepted_; }
  const Status& error() const { return error_; }

 private:
  ProtocolConformance conformance_;
  std::vector<uint8_t> buffer_;
  size_t parse_offset_ = 0;
  uint64_t frames_accepted_ = 0;
  Status error_;
};

}  // namespace dsgm

#endif  // DSGM_NET_PROTOCOL_SPEC_H_
