// Binary wire codec for the cluster protocol frames.
//
// Every frame crossing a transport is encoded as
//
//   u32-LE payload_length | payload
//   payload := u8 frame_type | body
//
// with varint (LEB128) packed bodies; signed integers use zigzag coding and
// counter ids inside a bundle are delta-coded (sync bundles enumerate dense
// counter ranges, so deltas collapse to one byte each). Four frame types
// carry the net/wire.h messages (kStatsReport is the observability one);
// two more (kChannelClose, kHello) are transport control frames that never
// reach application code.
//
// Decoding is defensive: truncated frames, oversized length prefixes, bad
// enum tags, and trailing bytes all return a Status error and never touch
// memory outside the input buffer.

#ifndef DSGM_NET_CODEC_H_
#define DSGM_NET_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace dsgm {

enum class FrameType : uint8_t {
  kUpdateBundle = 1,  // site -> coordinator
  kRoundAdvance = 2,  // coordinator -> site
  kEventBatch = 3,    // dispatcher -> site
  kChannelClose = 4,  // transport control: sender closed one logical channel
  kHello = 5,         // transport control: connection announces its site id
  kHeartbeat = 6,     // transport control: liveness beacon; v4 adds clock
                      // samples and a coordinator -> site echo leg
  kStatsReport = 7,   // observability: per-site stats piggybacked on heartbeats
  kTraceChunk = 8,    // observability: incremental TraceRing drain (site ->
                      // coordinator), piggybacked on the heartbeat cadence
  kCompressed = 9,    // v5 envelope: varint declared raw size + LZ block that
                      // decompresses to another frame's payload. Exists only
                      // on the wire — DecodeFramePayload unwraps it (setting
                      // Frame::compressed), so application code never sees
                      // the type.
};

/// Wire protocol revision, carried in every kHello frame ahead of the site
/// id. Bump on any frame-format change; the accepting side rejects a
/// mismatched hello with a clear Status instead of misparsing later frames.
/// History: 1 = varint codec with versioned hello (2026-07);
///          2 = kHeartbeat liveness frames (2026-07);
///          3 = kStatsReport observability frames (2026-08);
///          4 = kTraceChunk trace shipping + heartbeat clock samples and
///              coordinator echoes (2026-08);
///          5 = capability hellos (trailing caps varint) + negotiated
///              kCompressed batch envelopes (2026-08).
constexpr uint8_t kProtocolVersion = 5;

/// The oldest peer revision a hello may negotiate down to. v4 and v5 frame
/// bodies are wire-compatible (v5 only ADDS the caps varint and the
/// kCompressed envelope, both gated on the negotiated version), so a v5
/// endpoint accepts a v4 hello and runs the connection at v4 — uncompressed,
/// caps-less. Anything older changed frame bodies and is still a mismatch.
constexpr uint8_t kMinNegotiableVersion = 4;

/// kHello capability bits (v5+, carried in the trailing caps varint).
constexpr uint64_t kCapCompression = 1;

/// Tagged union of everything a connection can carry. Only the member
/// selected by `type` is meaningful.
struct Frame {
  FrameType type = FrameType::kUpdateBundle;
  UpdateBundle bundle;   // kUpdateBundle
  RoundAdvance advance;  // kRoundAdvance
  EventBatch batch;      // kEventBatch
  /// kChannelClose: which logical channel the sender closed.
  FrameType channel = FrameType::kUpdateBundle;
  /// kHello: the connecting site's id and the protocol revision it speaks.
  /// The codec round-trips any version value; rejecting mismatches is the
  /// transport's job (it owns the error message and the Status code).
  /// kHeartbeat reuses `site`: the sender's claimed site id. Receivers treat
  /// heartbeats as per-connection liveness evidence only — the claimed id is
  /// never used to index protocol state, so a forged id proves nothing but
  /// the forger's own connection being alive.
  int32_t site = -1;
  uint8_t protocol_version = kProtocolVersion;
  /// kHello (v5+): capability bits (kCapCompression). v4 hellos decode with
  /// caps == 0; encoders emit the caps varint only when protocol_version
  /// >= 5 so a forged-v4 hello round-trips byte-identically.
  uint64_t caps = 0;
  /// Set by the decoder when this frame arrived inside a kCompressed
  /// envelope. The conformance layer uses it to reject compressed traffic
  /// on connections that negotiated v4 (protocol_spec.h kInCompressed).
  bool compressed = false;
  /// kStatsReport: the sender's cumulative stats. Like heartbeats, the
  /// embedded site id is a claim — receivers must check it against the
  /// connection's authenticated id and drop mismatches before letting it
  /// index the health table.
  SiteStatsReport stats;
  /// kHeartbeat: the v4 clock samples for skew estimation (net/wire.h).
  /// Zeros on the legacy make-path and before the first echo round-trip.
  HeartbeatTimestamps hb;
  /// kTraceChunk: the shipped trace events. The embedded site id is a
  /// claim, checked against the connection's hello id like stats reports.
  TraceChunk trace;
};

Frame MakeFrame(UpdateBundle bundle);
Frame MakeFrame(RoundAdvance advance);
Frame MakeFrame(EventBatch batch);
Frame MakeChannelClose(FrameType channel);
/// The default hello advertises kCapCompression when the process-wide
/// wire-compression switch (net/compress.h) is on.
Frame MakeHello(int32_t site);
Frame MakeHello(int32_t site, uint64_t caps);
Frame MakeHeartbeat(int32_t site);
Frame MakeHeartbeat(int32_t site, const HeartbeatTimestamps& hb);
Frame MakeStatsReport(const SiteStatsReport& stats);
Frame MakeTraceChunk(TraceChunk chunk);

/// Upper bound on one frame's payload; a length prefix above this is
/// rejected before any allocation (protects against corrupt peers).
constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Reads the u32-LE length prefix from the first 4 bytes of `data` — THE
/// framing rule, shared by every transport's parser so it cannot diverge.
constexpr uint32_t DecodeLengthPrefix(const uint8_t* data) {
  return static_cast<uint32_t>(data[0]) |
         (static_cast<uint32_t>(data[1]) << 8) |
         (static_cast<uint32_t>(data[2]) << 16) |
         (static_cast<uint32_t>(data[3]) << 24);
}

/// Appends the length prefix plus encoded payload of `frame` to `out`.
void AppendFrame(const Frame& frame, std::vector<uint8_t>* out);

/// True for the frame kinds the v5 compression envelope may carry: event
/// batches and final-count bundles — the bulk-data frames whose varint
/// payloads still tile repetitively. Control and liveness frames stay raw.
bool CompressionEligible(const Frame& frame);

/// Like AppendFrame, but when `frame` is CompressionEligible, the
/// process-wide switch is on, and the LZ pass actually shrinks the payload
/// (past a small floor), emits a kCompressed envelope instead of the raw
/// encoding. Callers gate this on the connection's NEGOTIATED capability —
/// the codec only decides eligibility and profitability. Updates the
/// net.compress.{bytes_in,bytes_out,ratio_x1000} instruments on every
/// eligible frame (raw fallbacks count too, so the ratio reflects the real
/// wire effect).
void AppendFrameMaybeCompressed(const Frame& frame, std::vector<uint8_t>* out);

/// Decodes one payload (the bytes after the length prefix). The payload
/// must be consumed exactly; trailing bytes are an error.
Status DecodeFramePayload(const uint8_t* data, size_t size, Frame* out);

/// Decodes one length-prefixed frame from the front of a buffer. On success
/// `*consumed` is the number of bytes the frame occupied. A buffer that
/// ends mid-frame is an error (transports read exact lengths, so a short
/// buffer means corruption, not "try again").
Status DecodeFrame(const uint8_t* data, size_t size, Frame* out, size_t* consumed);

// --- Primitives, exposed for tests.

void AppendVarint(uint64_t value, std::vector<uint8_t>* out);

constexpr uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

constexpr int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

}  // namespace dsgm

#endif  // DSGM_NET_CODEC_H_
