// Wire messages exchanged between cluster nodes.
//
// The threaded cluster speaks the same counter protocol as the synchronous
// simulation (monitor/round_schedule.h documents the rounds); these are the
// concrete message frames. Site->coordinator traffic is bundled: all counter
// updates caused by one event travel in one UpdateBundle, the optimization
// described in the paper's Section VI-A.

#ifndef DSGM_NET_WIRE_H_
#define DSGM_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"

namespace dsgm {

/// One counter report inside an UpdateBundle: the site's cumulative local
/// count of `counter` at the moment of reporting.
struct CounterReport {
  int64_t counter = 0;
  uint32_t value = 0;
};

/// Site -> coordinator frame.
struct UpdateBundle {
  enum class Kind : uint8_t {
    kReports,      // sampled counter reports of one event
    kSync,         // exact counts replying to a round advance
    kSiteDone,     // the site has processed its whole stream
    kFinalCounts,  // exact per-counter totals, sent after protocol shutdown
                   // so a remote coordinator can validate its estimates
  };
  Kind kind = Kind::kReports;
  int32_t site = -1;
  /// Round the sync replies to (kSync only); stale replies are harmless
  /// because reports carry cumulative counts.
  int32_t round = -1;
  std::vector<CounterReport> reports;
};

/// Coordinator -> site frame: counter `counter` enters `round` with
/// reporting probability `probability`; the site must reply with a sync.
struct RoundAdvance {
  int64_t counter = 0;
  int32_t round = 0;
  float probability = 1.0f;
};

/// Stream events are dispatched to sites as batches of instances, flattened
/// into one values array (num_vars values per event).
struct EventBatch {
  int32_t num_events = 0;
  std::vector<int32_t> values;
};

/// Site -> coordinator observability frame, piggybacked on the heartbeat
/// cadence: cumulative counters the coordinator folds into its live
/// per-site health table (common/metrics.h SiteHealthBoard). All fields are
/// totals since the site started, so a lost report costs nothing.
struct SiteStatsReport {
  int32_t site = -1;
  int64_t events_processed = 0;
  uint64_t updates_sent = 0;
  uint64_t syncs_sent = 0;
  uint64_t rounds_seen = 0;
  uint64_t heartbeats_sent = 0;
};

/// Heartbeat timing payload (protocol v4). Heartbeats carry three clock
/// samples so the coordinator can estimate each site's clock offset with
/// the NTP four-timestamp method, closed over two legs: the coordinator
/// echoes every site heartbeat (stamping `send_nanos` with its own clock),
/// and the site's NEXT heartbeat carries that echo back together with its
/// own receive time. The fourth timestamp — when this heartbeat reached
/// the coordinator — is measured locally at delivery, never trusted from
/// the wire. Zeros mean "no sample yet" (v4 sites before their first echo
/// round-trip completes).
struct HeartbeatTimestamps {
  /// Sender's clock at the moment this frame was built.
  int64_t send_nanos = 0;
  /// Site->coordinator only: the coordinator clock stamped into the last
  /// echo this site received (the echo's send_nanos, reflected back).
  int64_t echo_nanos = 0;
  /// Site->coordinator only: the site clock when that echo arrived.
  int64_t echo_recv_nanos = 0;
};

/// Site -> coordinator observability frame (protocol v4), piggybacked on
/// the heartbeat cadence like kStatsReport: an incremental drain of the
/// site's per-thread TraceRings. `first_seq` is the site-local sequence
/// number of events[0]; the cursor is monotone, so the coordinator can
/// account for events lost to ring overwrite (gaps) without any
/// retransmission — chunks are loss-tolerant by construction.
struct TraceChunk {
  int32_t site = -1;
  uint64_t first_seq = 0;
  std::vector<TraceEvent> events;
};

// Structural equality, used by the codec round-trip and transport
// conformance tests.
inline bool operator==(const CounterReport& a, const CounterReport& b) {
  return a.counter == b.counter && a.value == b.value;
}
inline bool operator==(const UpdateBundle& a, const UpdateBundle& b) {
  return a.kind == b.kind && a.site == b.site && a.round == b.round &&
         a.reports == b.reports;
}
inline bool operator==(const RoundAdvance& a, const RoundAdvance& b) {
  return a.counter == b.counter && a.round == b.round &&
         a.probability == b.probability;
}
inline bool operator==(const EventBatch& a, const EventBatch& b) {
  return a.num_events == b.num_events && a.values == b.values;
}
inline bool operator==(const SiteStatsReport& a, const SiteStatsReport& b) {
  return a.site == b.site && a.events_processed == b.events_processed &&
         a.updates_sent == b.updates_sent && a.syncs_sent == b.syncs_sent &&
         a.rounds_seen == b.rounds_seen &&
         a.heartbeats_sent == b.heartbeats_sent;
}
inline bool operator==(const HeartbeatTimestamps& a,
                       const HeartbeatTimestamps& b) {
  return a.send_nanos == b.send_nanos && a.echo_nanos == b.echo_nanos &&
         a.echo_recv_nanos == b.echo_recv_nanos;
}
inline bool operator==(const TraceChunk& a, const TraceChunk& b) {
  if (a.site != b.site || a.first_seq != b.first_seq ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (!(a.events[i] == b.events[i])) return false;
  }
  return true;
}

}  // namespace dsgm

#endif  // DSGM_NET_WIRE_H_
