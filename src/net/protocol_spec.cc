#include "net/protocol_spec.h"

#include <array>
#include <string>

#include "common/check.h"

namespace dsgm {
namespace {

// One allow-list row of the protocol spec. The table below is THE protocol:
// every (state, direction, input, version) combination not covered by a row
// is a violation. `min_version` encodes the version gates — a row applies to
// every version from max(min_version, kMinProtocolVersion) through
// kProtocolVersion.
struct AllowRow {
  ProtocolState state;
  ProtocolDirection direction;
  WireInput input;
  uint8_t min_version;
  ProtocolState next;
};

constexpr ProtocolDirection kS2C = ProtocolDirection::kSiteToCoordinator;
constexpr ProtocolDirection kC2S = ProtocolDirection::kCoordinatorToSite;

constexpr AllowRow kAllowedTransitions[] = {
    // --- coordinator receiving from a site -------------------------------
    // Handshake: exactly one hello, before anything else.
    {ProtocolState::kAwaitingHello, kS2C, WireInput::kInHello, 1,
     ProtocolState::kActive},
    // The update lane: bundles flow until the site closes it. Closing the
    // update lane is the site's terminal act — its data is done, only
    // liveness traffic may follow.
    {ProtocolState::kActive, kS2C, WireInput::kInUpdateBundle, 1,
     ProtocolState::kActive},
    {ProtocolState::kActive, kS2C, WireInput::kInCloseUpdates, 1,
     ProtocolState::kDraining},
    // Liveness traffic, by protocol revision: heartbeats exist since v2 and
    // may linger through Draining (the site waits for the coordinator's
    // hangup); stats reports exist since v3 and are data — data after the
    // update-lane close is a violation.
    {ProtocolState::kActive, kS2C, WireInput::kInHeartbeat, 2,
     ProtocolState::kActive},
    {ProtocolState::kDraining, kS2C, WireInput::kInHeartbeat, 2,
     ProtocolState::kDraining},
    {ProtocolState::kActive, kS2C, WireInput::kInStatsReport, 3,
     ProtocolState::kActive},
    // Trace chunks exist since v4 and, like stats reports, are data: legal
    // only while the update lane is open.
    {ProtocolState::kActive, kS2C, WireInput::kInTraceChunk, 4,
     ProtocolState::kActive},
    // The v5 compression envelope is a carrier, not a message: it may wrap
    // data frames wherever they are legal, so its rows mirror the states
    // where a compressible frame could arrive. S2C that is kActive only
    // (final-count bundles precede the update-lane close); data after the
    // close stays a violation, wrapped or not.
    {ProtocolState::kActive, kS2C, WireInput::kInCompressed, 5,
     ProtocolState::kActive},

    // --- site receiving from the coordinator -----------------------------
    {ProtocolState::kAwaitingHello, kC2S, WireInput::kInHello, 1,
     ProtocolState::kActive},
    {ProtocolState::kActive, kC2S, WireInput::kInEventBatch, 1,
     ProtocolState::kActive},
    {ProtocolState::kActive, kC2S, WireInput::kInRoundAdvance, 1,
     ProtocolState::kActive},
    // The coordinator owns two lanes with independent lifetimes: the event
    // dispatcher can finish (close events) while round commands continue,
    // and on abort the command lane can close first while event stragglers
    // are still in flight. Closing the command lane is the terminal act.
    {ProtocolState::kActive, kC2S, WireInput::kInCloseEvents, 1,
     ProtocolState::kActive},
    {ProtocolState::kActive, kC2S, WireInput::kInCloseCommands, 1,
     ProtocolState::kDraining},
    {ProtocolState::kDraining, kC2S, WireInput::kInEventBatch, 1,
     ProtocolState::kDraining},
    {ProtocolState::kDraining, kC2S, WireInput::kInCloseEvents, 1,
     ProtocolState::kDraining},
    // Heartbeat echoes exist since v4: the coordinator reflects each site
    // heartbeat so the site can close the NTP timestamp loop. They follow
    // the site's heartbeats, so they may arrive any time after the
    // handshake — including while the coordinator's command lane is closed.
    {ProtocolState::kActive, kC2S, WireInput::kInHeartbeat, 4,
     ProtocolState::kActive},
    {ProtocolState::kDraining, kC2S, WireInput::kInHeartbeat, 4,
     ProtocolState::kDraining},
    // v5 capability reply-hello: the coordinator answers a v5 site hello
    // with a hello of its own so the site learns the coordinator's caps
    // (the original handshake is site->coordinator only). It arrives after
    // the site armed its machine via OnHelloSent, hence in kActive; it is
    // state-preserving and idempotent. v4 coordinators never send one, and
    // on a v4-negotiated connection the row does not apply — a late hello
    // stays a violation there.
    {ProtocolState::kActive, kC2S, WireInput::kInHello, 5,
     ProtocolState::kActive},
    // Compressed envelopes C2S wrap event batches, which stay legal as
    // stragglers through Draining.
    {ProtocolState::kActive, kC2S, WireInput::kInCompressed, 5,
     ProtocolState::kActive},
    {ProtocolState::kDraining, kC2S, WireInput::kInCompressed, 5,
     ProtocolState::kDraining},
};

// Dense verdict table, built once from the allow rows.
//   index = ((state * kNumProtocolDirections + direction) * kNumWireInputs
//            + input) * kNumProtocolVersions + (version - kMin)
struct ProtocolTable {
  std::array<FrameRule, kNumProtocolStates * kNumProtocolDirections *
                            kNumWireInputs * kNumProtocolVersions>
      rules;  // default FrameRule{} = {kViolation, kClosed}

  static constexpr size_t IndexOf(ProtocolState state,
                                  ProtocolDirection direction, WireInput input,
                                  uint8_t version) {
    return ((static_cast<size_t>(state) * kNumProtocolDirections +
             static_cast<size_t>(direction)) *
                kNumWireInputs +
            static_cast<size_t>(input)) *
               kNumProtocolVersions +
           (version - kMinProtocolVersion);
  }

  constexpr ProtocolTable() : rules() {
    for (const AllowRow& row : kAllowedTransitions) {
      uint8_t first = row.min_version < kMinProtocolVersion
                          ? kMinProtocolVersion
                          : row.min_version;
      for (uint8_t v = first; v <= kProtocolVersion; ++v) {
        rules[IndexOf(row.state, row.direction, row.input, v)] =
            FrameRule{ProtocolVerdict::kAccept, row.next};
      }
    }
  }
};

constexpr ProtocolTable kProtocolTable{};

// The rule every out-of-table lookup resolves to.
constexpr FrameRule kViolationRule{};

}  // namespace

const FrameRule& LookupRule(ProtocolState state, ProtocolDirection direction,
                            WireInput input, uint8_t version) {
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return kViolationRule;
  }
  return kProtocolTable
      .rules[ProtocolTable::IndexOf(state, direction, input, version)];
}

WireInput WireInputOf(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kUpdateBundle:
      return WireInput::kInUpdateBundle;
    case FrameType::kRoundAdvance:
      return WireInput::kInRoundAdvance;
    case FrameType::kEventBatch:
      return WireInput::kInEventBatch;
    case FrameType::kChannelClose:
      switch (frame.channel) {
        case FrameType::kUpdateBundle:
          return WireInput::kInCloseUpdates;
        case FrameType::kRoundAdvance:
          return WireInput::kInCloseCommands;
        case FrameType::kEventBatch:
          return WireInput::kInCloseEvents;
        default:
          break;  // unreachable: the codec validates the channel tag
      }
      break;
    case FrameType::kHello:
      return WireInput::kInHello;
    case FrameType::kHeartbeat:
      return WireInput::kInHeartbeat;
    case FrameType::kStatsReport:
      return WireInput::kInStatsReport;
    case FrameType::kTraceChunk:
      return WireInput::kInTraceChunk;
    case FrameType::kCompressed:
      // The codec unwraps envelopes before a Frame exists (the inner type
      // lands in Frame::type, with Frame::compressed set); classification
      // of the ENVELOPE happens via that flag in OnFrame, never here.
      break;
  }
  DSGM_CHECK(false) << "WireInputOf: frame type "
                    << static_cast<int>(frame.type)
                    << " escaped codec validation";
  return WireInput::kInHello;  // unreachable
}

const char* ProtocolStateName(ProtocolState state) {
  switch (state) {
    case ProtocolState::kAwaitingHello:
      return "awaiting_hello";
    case ProtocolState::kActive:
      return "active";
    case ProtocolState::kDraining:
      return "draining";
    case ProtocolState::kClosed:
      return "closed";
  }
  return "unknown";
}

const char* ProtocolDirectionName(ProtocolDirection direction) {
  switch (direction) {
    case ProtocolDirection::kSiteToCoordinator:
      return "site_to_coordinator";
    case ProtocolDirection::kCoordinatorToSite:
      return "coordinator_to_site";
  }
  return "unknown";
}

const char* WireInputName(WireInput input) {
  switch (input) {
    case WireInput::kInUpdateBundle:
      return "update_bundle";
    case WireInput::kInRoundAdvance:
      return "round_advance";
    case WireInput::kInEventBatch:
      return "event_batch";
    case WireInput::kInCloseUpdates:
      return "close_updates";
    case WireInput::kInCloseCommands:
      return "close_commands";
    case WireInput::kInCloseEvents:
      return "close_events";
    case WireInput::kInHello:
      return "hello";
    case WireInput::kInHeartbeat:
      return "heartbeat";
    case WireInput::kInStatsReport:
      return "stats_report";
    case WireInput::kInTraceChunk:
      return "trace_chunk";
    case WireInput::kInCompressed:
      return "compressed";
  }
  return "unknown";
}

ProtocolConformance::ProtocolConformance(ProtocolDirection direction,
                                         uint8_t version,
                                         ProtocolState initial)
    : direction_(direction),
      version_(version),
      negotiated_version_(version),
      state_(initial),
      violations_metric_(
          MetricsRegistry::Global().GetCounter(kProtocolViolationsMetric)) {}

bool ProtocolConformance::VersionAcceptable(uint8_t peer_version) const {
  // Exactly ours, or anything we can negotiate down to. The down-range
  // opens only when WE are past kMinNegotiableVersion: an endpoint pinned
  // to an old version (tests, forced downgrades) still demands an exact
  // match, like that old build would.
  return peer_version == version_ ||
         (peer_version >= kMinNegotiableVersion && peer_version < version_);
}

ProtocolVerdict ProtocolConformance::CountViolation(ProtocolVerdict verdict) {
  ++violations_;
  violations_metric_->Increment();
  state_ = ProtocolState::kClosed;
  return verdict;
}

ProtocolVerdict ProtocolConformance::OnFrame(const Frame& frame) {
  const WireInput input = WireInputOf(frame);
  // A hello carries the peer's protocol version; when it arrives where a
  // hello is legal but the version is not one we can run, report the
  // mismatch distinctly so transports can surface a deployment error
  // instead of a generic drop. (Everywhere else a hello is just an
  // out-of-state frame.)
  if (input == WireInput::kInHello && state_ == ProtocolState::kAwaitingHello &&
      !VersionAcceptable(frame.protocol_version)) {
    return CountViolation(ProtocolVerdict::kVersionMismatch);
  }
  // A frame that arrived inside a compression envelope must pass the
  // envelope's own rule first: kInCompressed exists only at v5+, so a peer
  // that negotiated (or was accepted at) v4 violates here — the
  // model-checked "forged compressed flag" case.
  if (frame.compressed) {
    const FrameRule& wrap = LookupRule(state_, direction_,
                                       WireInput::kInCompressed,
                                       negotiated_version_);
    if (wrap.verdict != ProtocolVerdict::kAccept) {
      return CountViolation(ProtocolVerdict::kViolation);
    }
  }
  const FrameRule& rule =
      LookupRule(state_, direction_, input, negotiated_version_);
  if (rule.verdict != ProtocolVerdict::kAccept) {
    return CountViolation(ProtocolVerdict::kViolation);
  }
  // The v5 capability reply-hello (accepted in kActive by the table) still
  // must claim a version we can run; the table's version axis is OUR
  // negotiated version, not the frame's claim.
  if (input == WireInput::kInHello &&
      !VersionAcceptable(frame.protocol_version)) {
    return CountViolation(ProtocolVerdict::kViolation);
  }
  // Payload semantics: observability frames embed a site-id claim that must
  // match the connection's authenticated (hello) id. A mismatch is forged
  // attribution — terminal, like any structural violation.
  if (bound_site_ >= 0) {
    if ((input == WireInput::kInStatsReport &&
         frame.stats.site != bound_site_) ||
        (input == WireInput::kInTraceChunk &&
         frame.trace.site != bound_site_)) {
      return CountViolation(ProtocolVerdict::kViolation);
    }
  }
  if (input == WireInput::kInHello) {
    if (state_ == ProtocolState::kAwaitingHello) bound_site_ = frame.site;
    negotiated_version_ = frame.protocol_version < version_
                              ? frame.protocol_version
                              : version_;
    peer_caps_ = frame.caps;
  }
  state_ = rule.next;
  return ProtocolVerdict::kAccept;
}

ProtocolVerdict ProtocolConformance::OnMalformedFrame() {
  return CountViolation(ProtocolVerdict::kViolation);
}

void ProtocolConformance::OnHelloSent() {
  if (state_ == ProtocolState::kAwaitingHello) {
    state_ = ProtocolState::kActive;
  }
}

void ProtocolConformance::MarkClosed() { state_ = ProtocolState::kClosed; }

ProtocolStreamChecker::ProtocolStreamChecker(ProtocolDirection direction,
                                             ProtocolState initial)
    : conformance_(direction, kProtocolVersion, initial) {}

Status ProtocolStreamChecker::Append(const uint8_t* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), data, data + size);
  while (buffer_.size() - parse_offset_ >= 4) {
    const uint32_t length = DecodeLengthPrefix(buffer_.data() + parse_offset_);
    if (length > kMaxFramePayload) {
      conformance_.OnMalformedFrame();
      error_ = InvalidArgumentError("stream: frame payload exceeds limit");
      return error_;
    }
    if (buffer_.size() - parse_offset_ - 4 < length) break;
    Frame frame;
    Status decoded =
        DecodeFramePayload(buffer_.data() + parse_offset_ + 4, length, &frame);
    parse_offset_ += 4 + static_cast<size_t>(length);
    if (!decoded.ok()) {
      conformance_.OnMalformedFrame();
      error_ = decoded;
      return error_;
    }
    const ProtocolVerdict verdict = conformance_.OnFrame(frame);
    if (verdict != ProtocolVerdict::kAccept) {
      error_ = verdict == ProtocolVerdict::kVersionMismatch
                   ? FailedPreconditionError("stream: protocol version mismatch")
                   : InvalidArgumentError(
                         std::string("stream: protocol violation: ") +
                         WireInputName(WireInputOf(frame)) + " in state " +
                         ProtocolStateName(conformance_.state()));
      return error_;
    }
    ++frames_accepted_;
    // Compact once the consumed prefix dominates the buffer, so a long
    // adversarial stream costs O(bytes) total, not O(bytes^2).
    if (parse_offset_ >= 4096 && parse_offset_ * 2 >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<ptrdiff_t>(parse_offset_));
      parse_offset_ = 0;
    }
  }
  return Status::Ok();
}

}  // namespace dsgm
