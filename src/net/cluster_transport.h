// Pluggable cluster plumbing: a ClusterTransport owns the channels wiring a
// coordinator (plus its event dispatcher) to k sites, hiding whether frames
// cross thread queues or real sockets.
//
// Two implementations ship:
//   - MakeLoopbackTransport: the original in-process BoundedQueues, wrapped
//     in QueueChannels. Zero serialization; the threaded benchmarks
//     (paper Figs. 7-8) run on this unchanged.
//   - MakeLocalTcpTransport: k real localhost TCP connections (one per
//     site) with framed, codec-serialized traffic. The processes' roles
//     stay in-process threads, but every byte crosses the kernel socket
//     layer — the honest-bytes substrate, also used by the transport
//     conformance tests and the net throughput bench.
//
// Both implementations must pass the shared conformance suite in
// tests/transport_test.cc.

#ifndef DSGM_NET_CLUSTER_TRANSPORT_H_
#define DSGM_NET_CLUSTER_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/io_backend.h"
#include "net/wire.h"

namespace dsgm {

/// Measured wire traffic, when the transport can observe it. Loopback moves
/// no bytes, so it reports measured = false; the estimated protocol bytes in
/// CommStats remain the comparable metric across transports.
struct TransportStats {
  uint64_t bytes_up = 0;    // sites -> coordinator, incl. framing
  uint64_t bytes_down = 0;  // coordinator -> sites, incl. framing
  bool measured = false;
};

/// Channel endpoints used by the coordinator process: the merged update
/// stream from every site, plus per-site command and event lanes.
struct CoordinatorEndpoints {
  Channel<UpdateBundle>* updates = nullptr;
  std::vector<Channel<EventBatch>*> events;
  std::vector<Channel<RoundAdvance>*> commands;
};

/// Channel endpoints used by one site.
struct SiteEndpoints {
  Channel<EventBatch>* events = nullptr;
  Channel<RoundAdvance>* commands = nullptr;
  Channel<UpdateBundle>* updates = nullptr;
};

class ClusterTransport {
 public:
  virtual ~ClusterTransport() = default;

  virtual int num_sites() const = 0;
  virtual CoordinatorEndpoints coordinator() = 0;
  virtual SiteEndpoints site(int s) = 0;
  virtual TransportStats stats() const { return TransportStats(); }

  /// Tears down I/O threads and sockets. Call after every node using the
  /// endpoints has finished; idempotent, also runs on destruction.
  virtual void Shutdown() {}
};

/// Builds a transport for `num_sites` sites. An empty factory on
/// ClusterConfig means loopback.
using TransportFactory =
    std::function<std::unique_ptr<ClusterTransport>(int num_sites)>;

std::unique_ptr<ClusterTransport> MakeLoopbackTransport(int num_sites);

/// Spins up a localhost listener plus one connected socket pair per site,
/// all within this process. Aborts via DSGM_CHECK if localhost sockets are
/// unavailable (an environment problem, not a recoverable input).
std::unique_ptr<ClusterTransport> MakeLocalTcpTransport(int num_sites);

/// Same localhost socket pairs, but served by TWO reactor event-loop
/// threads total (one owning every coordinator-side connection, one owning
/// every site side) instead of 2-3 threads per site — the transport that
/// lets one coordinator scale to hundreds of sites. Implemented in
/// net/reactor_transport.{h,cc}; passes the same conformance suite.
std::unique_ptr<ClusterTransport> MakeReactorTransport(int num_sites);

/// Same, with an explicit readiness backend for both reactor threads
/// (io_uring requests fall back to epoll when the kernel refuses; see
/// net/io_backend.h).
std::unique_ptr<ClusterTransport> MakeReactorTransport(int num_sites,
                                                       IoBackendKind io_backend);

}  // namespace dsgm

#endif  // DSGM_NET_CLUSTER_TRANSPORT_H_
