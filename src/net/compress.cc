#include "net/compress.h"

#include <atomic>
#include <cstring>

namespace dsgm {
namespace {

constexpr int kHashLog = 13;
constexpr size_t kHashSize = size_t{1} << kHashLog;
// Candidates remembered per hash bucket. Event-batch payloads are short
// strings over a tiny alphabet: most 4-byte windows recur many times, and
// keeping only the latest occurrence (a single-probe LZ4-style table)
// forfeits most long matches to hash-slot churn. Four ways with
// longest-match selection buys ~2x better ratios on that traffic for a
// still-trivial probe cost.
constexpr size_t kWays = 4;
constexpr size_t kMaxOffset = 65535;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Fibonacci hashing of the 4-byte window at a position.
inline uint32_t HashOf(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

// Emits a nibble-15 length continuation (the nibble itself is in the token).
void AppendLengthExtension(size_t len, std::vector<uint8_t>* out) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

std::atomic<bool> g_wire_compression_enabled{true};

}  // namespace

void SetWireCompressionEnabled(bool enabled) {
  g_wire_compression_enabled.store(enabled, std::memory_order_relaxed);
}

bool WireCompressionEnabled() {
  return g_wire_compression_enabled.load(std::memory_order_relaxed);
}

// Pushes `pos` as bucket newest, aging the other ways down one slot.
inline void BucketInsert(uint32_t* bucket, size_t pos) {
  for (size_t way = kWays - 1; way > 0; --way) bucket[way] = bucket[way - 1];
  bucket[0] = static_cast<uint32_t>(pos + 1);
}

void LzCompress(const uint8_t* in, size_t in_size, std::vector<uint8_t>* out) {
  // Positions + 1 of recent 4-byte windows per (bucket, way); 0 = empty.
  // Greedy longest-of-kWays matcher with backward extension; every scanned
  // AND matched position is seeded so interleaved repeat patterns stay
  // findable (single-probe tables churn them out).
  std::vector<uint32_t> table(kHashSize * kWays, 0);
  out->reserve(out->size() + in_size / 2 + 16);
  size_t anchor = 0;
  size_t pos = 0;
  while (pos + kLzMinMatch <= in_size) {
    const uint32_t window = Load32(in + pos);
    uint32_t* bucket = &table[static_cast<size_t>(HashOf(window)) * kWays];
    size_t best_len = 0;
    size_t best_cand = 0;
    for (size_t way = 0; way < kWays; ++way) {
      if (bucket[way] == 0) continue;
      const size_t cand_pos = bucket[way] - 1;
      const size_t offset = pos - cand_pos;
      if (offset == 0 || offset > kMaxOffset ||
          Load32(in + cand_pos) != window) {
        continue;
      }
      size_t len = kLzMinMatch;
      while (pos + len < in_size && in[cand_pos + len] == in[pos + len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_cand = cand_pos;
      }
    }
    BucketInsert(bucket, pos);
    if (best_len == 0) {
      ++pos;
      continue;
    }
    // Grow the match backward into pending literals (bytes already scanned
    // past without a match of their own often complete this one). The
    // offset is invariant: both cursors step together.
    size_t cand_pos = best_cand;
    size_t match_len = best_len;
    while (pos > anchor && cand_pos > 0 && in[cand_pos - 1] == in[pos - 1]) {
      --pos;
      --cand_pos;
      ++match_len;
    }
    const size_t offset = pos - cand_pos;
    const size_t literal_len = pos - anchor;
    const size_t match_extra = match_len - kLzMinMatch;
    const uint8_t literal_nibble =
        literal_len >= 15 ? 15 : static_cast<uint8_t>(literal_len);
    const uint8_t match_nibble =
        match_extra >= 15 ? 15 : static_cast<uint8_t>(match_extra);
    out->push_back(static_cast<uint8_t>((literal_nibble << 4) | match_nibble));
    if (literal_len >= 15) AppendLengthExtension(literal_len - 15, out);
    out->insert(out->end(), in + anchor, in + pos);
    out->push_back(static_cast<uint8_t>(offset & 0xff));
    out->push_back(static_cast<uint8_t>((offset >> 8) & 0xff));
    if (match_extra >= 15) AppendLengthExtension(match_extra - 15, out);
    const size_t match_end = pos + match_len;
    for (size_t seed = pos + 1;
         seed < match_end && seed + kLzMinMatch <= in_size; ++seed) {
      BucketInsert(
          &table[static_cast<size_t>(HashOf(Load32(in + seed))) * kWays],
          seed);
    }
    pos = match_end;
    anchor = pos;
  }
  // Terminal literals-only sequence (always present, even when empty, so a
  // block is never zero bytes).
  const size_t literal_len = in_size - anchor;
  const uint8_t literal_nibble =
      literal_len >= 15 ? 15 : static_cast<uint8_t>(literal_len);
  out->push_back(static_cast<uint8_t>(literal_nibble << 4));
  if (literal_len >= 15) AppendLengthExtension(literal_len - 15, out);
  out->insert(out->end(), in + anchor, in + in_size);
}

Status LzDecompress(const uint8_t* in, size_t in_size, size_t expected_size,
                    std::vector<uint8_t>* out) {
  const size_t out_base = out->size();
  out->reserve(out_base + expected_size);
  size_t ip = 0;
  // Reads a nibble-15 continuation; `limit` bounds the result so a crafted
  // 255-run cannot climb past the declared size (and cannot overflow).
  const auto read_length = [&](size_t nibble, size_t limit,
                               size_t* len) -> Status {
    *len = nibble;
    if (nibble != 15) return Status::Ok();
    uint8_t byte = 0;
    do {
      if (ip >= in_size) {
        return InvalidArgumentError("compress: truncated length extension");
      }
      byte = in[ip++];
      *len += byte;
      if (*len > limit + 15) {
        return InvalidArgumentError(
            "compress: length extension exceeds declared size");
      }
    } while (byte == 255);
    return Status::Ok();
  };
  while (ip < in_size) {
    const uint8_t token = in[ip++];
    size_t literal_len = 0;
    DSGM_RETURN_IF_ERROR(
        read_length(token >> 4, expected_size, &literal_len));
    if (literal_len > in_size - ip) {
      return InvalidArgumentError("compress: truncated literals");
    }
    const size_t produced = out->size() - out_base;
    if (literal_len > expected_size - produced) {
      return InvalidArgumentError(
          "compress: literals exceed declared size");
    }
    out->insert(out->end(), in + ip, in + ip + literal_len);
    ip += literal_len;
    if (ip == in_size) break;  // Terminal sequence: literals only.
    if (in_size - ip < 2) {
      return InvalidArgumentError("compress: truncated match offset");
    }
    const size_t offset = static_cast<size_t>(in[ip]) |
                          (static_cast<size_t>(in[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > out->size() - out_base) {
      return InvalidArgumentError("compress: match offset outside window");
    }
    size_t match_extra = 0;
    DSGM_RETURN_IF_ERROR(
        read_length(token & 0x0f, expected_size, &match_extra));
    const size_t match_len = match_extra + kLzMinMatch;
    if (match_len > expected_size - (out->size() - out_base)) {
      return InvalidArgumentError("compress: match exceeds declared size");
    }
    // Byte-by-byte on purpose: offsets shorter than the match length
    // overlap the bytes being produced (RLE-style runs).
    size_t src = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[src + i]);
    }
  }
  if (out->size() - out_base != expected_size) {
    return InvalidArgumentError("compress: block decodes to wrong size");
  }
  return Status::Ok();
}

}  // namespace dsgm
