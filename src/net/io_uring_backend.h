// io_uring readiness backend (see net/io_backend.h for the contract).
//
// Implementation notes live in io_uring_backend.cc; the public surface is
// just the factory, declared in io_backend.h and re-declared here for
// direct includers. Builds without the cmake io_uring probe compile this
// translation unit down to a factory that always returns null.

#ifndef DSGM_NET_IO_URING_BACKEND_H_
#define DSGM_NET_IO_URING_BACKEND_H_

#include <memory>

#include "net/io_backend.h"

namespace dsgm {

std::unique_ptr<IoBackend> MakeIoUringBackend();

}  // namespace dsgm

#endif  // DSGM_NET_IO_URING_BACKEND_H_
