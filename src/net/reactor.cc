#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "net/io_uring_backend.h"

namespace dsgm {

// --- IoBackend: epoll implementation + selection -------------------------

namespace {

class EpollBackend final : public IoBackend {
 public:
  EpollBackend() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    DSGM_CHECK_GE(epoll_fd_, 0) << "epoll_create1 failed";
  }

  ~EpollBackend() override { ::close(epoll_fd_); }

  const char* name() const override { return "epoll"; }

  void Add(int fd, uint32_t events) override {
    epoll_event event{};
    event.events = events | EPOLLET;
    event.data.fd = fd;
    DSGM_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event), 0)
        << "epoll_ctl(ADD) failed for fd " << fd;
  }

  void Modify(int fd, uint32_t events) override {
    epoll_event event{};
    event.events = events | EPOLLET;
    event.data.fd = fd;
    DSGM_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event), 0)
        << "epoll_ctl(MOD) failed for fd " << fd;
  }

  void Remove(int fd) override {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(int timeout_ms, std::vector<IoReady>* out) override {
    epoll_event events[kMaxWaitEvents];
    const int n = ::epoll_wait(epoll_fd_, events, kMaxWaitEvents, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      out->push_back(IoReady{events[i].data.fd, events[i].events});
    }
    return n;
  }

 private:
  static constexpr int kMaxWaitEvents = 128;

  int epoll_fd_ = -1;
};

}  // namespace

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kDefault:
      return "default";
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kIoUring:
      return "io_uring";
    case IoBackendKind::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseIoBackendKind(const std::string& text, IoBackendKind* out) {
  if (text == "epoll") {
    *out = IoBackendKind::kEpoll;
    return true;
  }
  if (text == "io_uring") {
    *out = IoBackendKind::kIoUring;
    return true;
  }
  if (text == "auto") {
    *out = IoBackendKind::kAuto;
    return true;
  }
  return false;
}

IoBackendKind ResolveIoBackendKind(IoBackendKind kind) {
  if (kind != IoBackendKind::kDefault) return kind;
  const char* env = std::getenv("DSGM_IO_BACKEND");
  IoBackendKind parsed;
  if (env != nullptr && ParseIoBackendKind(env, &parsed)) return parsed;
  return IoBackendKind::kEpoll;
}

std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind kind) {
  switch (ResolveIoBackendKind(kind)) {
    case IoBackendKind::kIoUring:
    case IoBackendKind::kAuto: {
      std::unique_ptr<IoBackend> uring = MakeIoUringBackend();
      if (uring != nullptr) return uring;
      break;  // Build or kernel lacks io_uring; epoll serves the request.
    }
    default:
      break;
  }
  return std::make_unique<EpollBackend>();
}

bool IoUringAvailable() {
  static const bool available = MakeIoUringBackend() != nullptr;
  return available;
}

// --- TimerWheel ----------------------------------------------------------

TimerWheel::TimerWheel(int tick_ms, size_t num_slots)
    : tick_ms_(tick_ms), slots_(num_slots) {
  DSGM_CHECK_GT(tick_ms, 0);
  DSGM_CHECK_GT(num_slots, 0u);
  // Power-of-two slot count so the bucket hash is a mask.
  DSGM_CHECK_EQ(num_slots & (num_slots - 1), 0u);
}

void TimerWheel::Schedule(uint64_t id, int delay_ms) {
  const uint64_t delay_ticks = std::max<uint64_t>(
      1, (static_cast<uint64_t>(std::max(delay_ms, 0)) +
          static_cast<uint64_t>(tick_ms_) - 1) /
             static_cast<uint64_t>(tick_ms_));
  const uint64_t expiry = current_tick_ + delay_ticks;
  // Re-scheduling an id that was cancelled but not yet reaped revives it;
  // forget the cancellation.
  cancelled_.erase(id);
  slots_[expiry & (slots_.size() - 1)].push_back(Entry{id, expiry});
  ++live_;
}

void TimerWheel::Cancel(uint64_t id) { cancelled_.insert(id); }

void TimerWheel::DrainSlot(size_t slot, uint64_t now_tick,
                           std::vector<uint64_t>* fired) {
  std::vector<Entry>& bucket = slots_[slot];
  size_t kept = 0;
  for (size_t i = 0; i < bucket.size(); ++i) {
    const Entry entry = bucket[i];
    if (cancelled_.erase(entry.id) > 0) {
      --live_;
      continue;
    }
    if (entry.expiry_tick <= now_tick) {
      fired->push_back(entry.id);
      --live_;
      continue;
    }
    bucket[kept++] = entry;  // A later rotation's timer stays bucketed.
  }
  bucket.resize(kept);
}

void TimerWheel::Advance(uint64_t now_tick, std::vector<uint64_t>* fired) {
  if (now_tick <= current_tick_) return;
  const uint64_t span = now_tick - current_tick_;
  if (span >= slots_.size()) {
    // The loop stalled past a whole rotation; every bucket may hold due
    // timers. One full sweep instead of tick-by-tick.
    current_tick_ = now_tick;
    for (size_t s = 0; s < slots_.size(); ++s) DrainSlot(s, now_tick, fired);
    return;
  }
  while (current_tick_ < now_tick) {
    ++current_tick_;
    DrainSlot(current_tick_ & (slots_.size() - 1), current_tick_, fired);
  }
}

// --- Reactor -------------------------------------------------------------

namespace {
constexpr size_t kWheelSlots = 256;
}  // namespace

Reactor::Reactor(IoBackendKind backend)
    : backend_(MakeIoBackend(backend)),
      wheel_(kTickMs, kWheelSlots),
      epoch_nanos_(NowNanos()),
      loop_latency_ns_(
          MetricsRegistry::Global().GetHistogram("net.reactor.loop_ns")),
      timer_fires_(MetricsRegistry::Global().GetCounter("net.reactor.timer_fires")),
      wakeups_(MetricsRegistry::Global().GetCounter("net.reactor.wakeups")) {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DSGM_CHECK_GE(wake_fd_, 0) << "eventfd failed";
  // The loop has not started; the constructing thread holds the role for
  // the initial registration.
  loop_role.Grant();
  AddFd(wake_fd_, EPOLLIN, [this](uint32_t) {
    loop_role.AssertHeld();
    DrainWakeFd();
  });
  loop_role.Yield();
}

Reactor::~Reactor() {
  Stop();
  ::close(wake_fd_);
}

void Reactor::Start() {
  DSGM_CHECK(!started_.load());
  started_.store(true);
  thread_ = std::thread([this] { Loop(); });
}

void Reactor::Stop() {
  if (!started_.load()) return;
  DSGM_CHECK(!InLoopThread());
  if (!stop_.exchange(true)) Wake();
  if (thread_.joinable()) thread_.join();
}

bool Reactor::InLoopThread() const {
  // Compares against the id published by the loop itself, not
  // thread_.get_id(): the latter races with Start()'s move-assignment while
  // the freshly spawned loop is already running.
  return loop_id_.load(std::memory_order_acquire) == std::this_thread::get_id();
}

void Reactor::Post(std::function<void()> fn) {
  if (InLoopThread()) {
    fn();
    return;
  }
  {
    MutexLock lock(&post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void Reactor::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter (impossible here) or EINTR just means the loop
  // is already due to wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::DrainWakeFd() {
  uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
  wakeups_->Increment();
}

void Reactor::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    MutexLock lock(&post_mu_);
    batch.swap(posted_);
  }
  for (std::function<void()>& fn : batch) fn();
}

void Reactor::AddFd(int fd, uint32_t events, FdHandler handler) {
  DSGM_CHECK(handlers_.emplace(fd, std::move(handler)).second)
      << "fd registered twice: " << fd;
  backend_->Add(fd, events);
}

void Reactor::ModifyFd(int fd, uint32_t events) {
  backend_->Modify(fd, events);
}

void Reactor::RemoveFd(int fd) {
  if (handlers_.erase(fd) == 0) return;
  backend_->Remove(fd);
}

Reactor::TimerId Reactor::AddTimer(int delay_ms, std::function<void()> fn,
                                   bool periodic) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, TimerEntry{std::move(fn), periodic ? delay_ms : 0});
  wheel_.Schedule(id, delay_ms);
  return id;
}

void Reactor::CancelTimer(TimerId id) {
  if (timers_.erase(id) > 0) wheel_.Cancel(id);
}

uint64_t Reactor::NowTick() const {
  const int64_t elapsed_ms = (NowNanos() - epoch_nanos_) / 1000000;
  return static_cast<uint64_t>(elapsed_ms) / static_cast<uint64_t>(kTickMs);
}

int Reactor::NextWaitMs() const {
  // With no timers armed there is nothing the wheel needs to observe; wake
  // for fds and posts only (capped so a missed wakeup can never hang long).
  if (wheel_.live() == 0) return 200;
  return kTickMs;
}

void Reactor::AdvanceTimers() {
  std::vector<uint64_t> fired;
  wheel_.Advance(NowTick(), &fired);
  for (uint64_t id : fired) {
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // Cancelled after firing was decided.
    timer_fires_->Increment();
    if (it->second.period_ms > 0) {
      wheel_.Schedule(id, it->second.period_ms);
      // Copy before invoking: the callback may CancelTimer(id) — legal, and
      // it must not destroy the std::function currently executing. The
      // reschedule above is undone by Cancel's lazy reap.
      const std::function<void()> fn = it->second.fn;
      fn();
    } else {
      std::function<void()> fn = std::move(it->second.fn);
      timers_.erase(it);
      fn();
    }
  }
}

void Reactor::Loop() {
  loop_id_.store(std::this_thread::get_id(), std::memory_order_release);
  loop_role.Grant();
  std::vector<IoReady> ready;
  ready.reserve(128);
  while (!stop_.load(std::memory_order_acquire)) {
    ready.clear();
    const int n = backend_->Wait(NextWaitMs(), &ready);
    if (n < 0) break;  // Unrecoverable backend failure.
    // Iteration latency = the work between two waits (handlers, timers,
    // posted closures) — the time a newly-ready fd can wait before the
    // loop gets back to the backend. The sleep itself is not latency.
    const int64_t work_start = NowNanos();
    for (const IoReady& r : ready) {
      // A handler earlier in this batch may have removed a later fd; the
      // map lookup (not a stale pointer) makes that safe.
      auto it = handlers_.find(r.fd);
      if (it == handlers_.end()) continue;
      it->second(r.events);
    }
    AdvanceTimers();
    RunPosted();
    loop_latency_ns_->Record(static_cast<uint64_t>(NowNanos() - work_start));
  }
  // Free the role so the owner may Grant() it for post-Stop teardown of
  // loop-owned state (connections deregistering their fds).
  loop_role.Yield();
}

}  // namespace dsgm
