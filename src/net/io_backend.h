// The Reactor's pluggable readiness backend.
//
// Reactor (net/reactor.h) owns handlers, timers, posting, and the
// single-loop-thread ThreadRole contract; what it delegates here is the
// narrow OS surface: register interest in an fd, wait for readiness. Two
// implementations exist —
//
//   epoll     (reactor.cc)            edge-triggered epoll, always available
//   io_uring  (io_uring_backend.cc)   multishot IORING_OP_POLL_ADD over raw
//                                     io_uring_setup/enter syscalls (no
//                                     liburing); compile-gated by the cmake
//                                     probe and runtime-gated by a setup
//                                     probe, falling back to epoll when the
//                                     kernel (or a seccomp policy) refuses
//
// Both deliver the SAME edge-ish contract the fd handlers were written
// against: a readiness record means "the fd transitioned; drain it to
// EAGAIN". Multishot poll only posts completions on waitqueue wakeups
// (plus one level-check at arm time), which matches EPOLLET closely enough
// that ReactorConnection runs unchanged on either backend.
//
// Thread contract: every method except construction is called from the
// reactor loop thread only (enforced at the Reactor layer, whose wrappers
// carry DSGM_REQUIRES(loop_role)).

#ifndef DSGM_NET_IO_BACKEND_H_
#define DSGM_NET_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dsgm {

/// One readiness record: `events` is an EPOLL*-style bitmask (EPOLLIN /
/// EPOLLOUT / EPOLLERR / EPOLLHUP — numerically identical to the POLL*
/// constants, which is what lets the io_uring backend pass them through).
struct IoReady {
  int fd = -1;
  uint32_t events = 0;
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual const char* name() const = 0;

  /// Registers / re-registers / removes interest. `events` is an EPOLL*
  /// mask without EPOLLET (edge semantics are the backend's job).
  virtual void Add(int fd, uint32_t events) = 0;
  virtual void Modify(int fd, uint32_t events) = 0;
  virtual void Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` and appends readiness records to `out`.
  /// Returns the number of records appended (0 on timeout/EINTR), or -1 on
  /// an unrecoverable backend failure (the loop exits).
  virtual int Wait(int timeout_ms, std::vector<IoReady>* out) = 0;
};

/// Which backend a Reactor should use.
enum class IoBackendKind : uint8_t {
  /// Honor the DSGM_IO_BACKEND environment variable ("epoll", "io_uring",
  /// "auto") when set, else epoll. This is what default-constructed
  /// Reactors use, so existing tests can be re-run wholesale on io_uring
  /// by the CI leg without touching every construction site.
  kDefault = 0,
  kEpoll = 1,
  /// io_uring when the kernel provides it, epoll otherwise (requesting
  /// io_uring is a preference, not a demand — the runtime probe decides;
  /// check Reactor::io_backend_name() for what actually ran).
  kIoUring = 2,
  kAuto = 3,
};

const char* IoBackendKindName(IoBackendKind kind);

/// Parses "epoll" / "io_uring" / "auto" (the --io-backend flag values).
bool ParseIoBackendKind(const std::string& text, IoBackendKind* out);

/// Maps kDefault through the environment; identity for explicit kinds.
IoBackendKind ResolveIoBackendKind(IoBackendKind kind);

/// Constructs the backend for `kind`, applying the runtime probe and the
/// epoll fallback. Never returns null.
std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind kind);

/// True when this build AND this kernel can actually run the io_uring
/// backend (probed once, cached). Benches and tests use it to skip-not-fail
/// io_uring comparisons on kernels (or seccomp sandboxes) without support.
bool IoUringAvailable();

/// Factory for the io_uring backend alone: null when the compile probe was
/// off or the runtime probe fails. Implemented in io_uring_backend.cc.
std::unique_ptr<IoBackend> MakeIoUringBackend();

}  // namespace dsgm

#endif  // DSGM_NET_IO_BACKEND_H_
