// A single-threaded event loop — the I/O substrate that lets ONE
// coordinator thread own hundreds of site connections (the thread-per-
// connection transport needs 2-3 threads per site; see net/reactor_transport.h
// for the transport built on top).
//
// Pieces:
//   - TimerWheel: a hashed timer wheel (fixed tick, power-of-two slots) for
//     the per-site liveness deadlines and heartbeat periods. Pure tick
//     arithmetic, no clock — unit-testable without sleeping.
//   - Reactor: a readiness backend (edge-triggered epoll, or multishot-poll
//     io_uring when the kernel provides it — see net/io_backend.h) + an
//     eventfd wakeup so other threads can inject work, + the wheel driven
//     from the wait timeout.
//
// Threading model: the loop runs on one dedicated thread (Start/Stop). All
// fd and timer mutation happens on that thread; other threads communicate
// exclusively through Post(), which enqueues a closure and wakes the loop.
// This keeps every handler single-threaded — no locks in the I/O path.
//
// That discipline is a compile-time contract: `loop_role` is a ThreadRole
// capability held by the loop thread, and every loop-only method requires
// it. Closures that cross the Post/timer/fd-handler boundary re-assert it
// with loop_role.AssertHeld() at their top (a std::function erases the
// static capability), which also CHECKs the calling thread in debug builds.

#ifndef DSGM_NET_REACTOR_H_
#define DSGM_NET_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/io_backend.h"

namespace dsgm {

/// Hashed timer wheel: timers hash into `num_slots` buckets by expiry tick;
/// advancing the wheel visits only the buckets whose turn came up. Entries
/// scheduled more than one rotation out stay bucketed and are skipped (and
/// re-kept) once per rotation — O(1) amortized for the short deadlines the
/// transport uses. Cancellation is lazy: cancelled ids are dropped when
/// their bucket is next visited.
class TimerWheel {
 public:
  TimerWheel(int tick_ms, size_t num_slots);

  int tick_ms() const { return tick_ms_; }
  size_t live() const { return live_; }
  uint64_t current_tick() const { return current_tick_; }

  /// Schedules `id` to fire `delay_ms` from the current tick (rounded up to
  /// a whole tick, minimum one: a timer never fires on the tick it was
  /// scheduled). Ids are caller-assigned and must be unique among live
  /// timers.
  void Schedule(uint64_t id, int delay_ms);

  void Cancel(uint64_t id);

  /// Advances the wheel to `now_tick`, appending every due, uncancelled id
  /// to `fired`. Ticks never move backwards; a stale `now_tick` is a no-op.
  void Advance(uint64_t now_tick, std::vector<uint64_t>* fired);

 private:
  struct Entry {
    uint64_t id;
    uint64_t expiry_tick;
  };

  void DrainSlot(size_t slot, uint64_t now_tick, std::vector<uint64_t>* fired);

  int tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_set<uint64_t> cancelled_;
  uint64_t current_tick_ = 0;
  size_t live_ = 0;
};

class Reactor {
 public:
  /// Bitmask of EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP, as delivered by
  /// the readiness backend. Registration is always edge-ish (EPOLLET for
  /// the epoll backend, multishot poll for io_uring); handlers must
  /// therefore drain the fd to EAGAIN.
  using FdHandler = std::function<void(uint32_t events)>;
  using TimerId = uint64_t;

  /// `backend` selects the readiness backend (net/io_backend.h). The
  /// default honors the DSGM_IO_BACKEND environment variable, else epoll;
  /// an unsatisfiable io_uring request falls back to epoll — consult
  /// io_backend_name() for what actually runs.
  explicit Reactor(IoBackendKind backend = IoBackendKind::kDefault);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the loop thread. Call exactly once.
  void Start();

  /// Requests exit, wakes the loop, and joins it. Idempotent; must not be
  /// called from the loop thread. Pending posted closures that have not run
  /// yet are discarded.
  void Stop();

  bool InLoopThread() const;

  /// The readiness backend actually in use ("epoll" or "io_uring") — the
  /// fallback may differ from what the constructor was asked for.
  const char* io_backend_name() const { return backend_->name(); }

  /// Runs `fn` on the loop thread: inline when already there, else enqueued
  /// and the loop woken. The only thread-safe entry point.
  void Post(std::function<void()> fn) DSGM_EXCLUDES(post_mu_);

  // --- Loop-thread only (or, before Start / after Stop, by a thread that
  // --- Grant()s itself the role) ------------------------------------------

  /// Registers `fd` with the given interest set (edge semantics implied).
  void AddFd(int fd, uint32_t events, FdHandler handler)
      DSGM_REQUIRES(loop_role);
  void ModifyFd(int fd, uint32_t events) DSGM_REQUIRES(loop_role);
  void RemoveFd(int fd) DSGM_REQUIRES(loop_role);

  /// One-shot (or periodic) timer; fires on the loop thread. Returns an id
  /// for CancelTimer. Granularity is the wheel tick (kTickMs).
  TimerId AddTimer(int delay_ms, std::function<void()> fn, bool periodic = false)
      DSGM_REQUIRES(loop_role);
  void CancelTimer(TimerId id) DSGM_REQUIRES(loop_role);

  /// The loop-thread capability. Held by the loop between Start and Stop;
  /// while the loop is not running, an external thread may Grant()/Yield()
  /// it to operate on loop-owned state (e.g. handler teardown).
  ThreadRole loop_role;

  static constexpr int kTickMs = 5;

 private:
  struct TimerEntry {
    std::function<void()> fn;
    int period_ms;  // 0 = one-shot
  };

  void Loop() DSGM_EXCLUDES(post_mu_);
  void Wake();
  void DrainWakeFd() DSGM_REQUIRES(loop_role);
  void RunPosted() DSGM_REQUIRES(loop_role) DSGM_EXCLUDES(post_mu_);
  void AdvanceTimers() DSGM_REQUIRES(loop_role);
  uint64_t NowTick() const;
  int NextWaitMs() const DSGM_REQUIRES(loop_role);

  const std::unique_ptr<IoBackend> backend_;
  int wake_fd_ = -1;
  std::unordered_map<int, FdHandler> handlers_ DSGM_GUARDED_BY(loop_role);

  TimerWheel wheel_ DSGM_GUARDED_BY(loop_role);
  std::unordered_map<TimerId, TimerEntry> timers_ DSGM_GUARDED_BY(loop_role);
  TimerId next_timer_id_ DSGM_GUARDED_BY(loop_role) = 1;
  int64_t epoch_nanos_;

  // Shared process-wide instruments (common/metrics.h); resolved once here,
  // relaxed-atomic updates from the loop thread.
  Histogram* const loop_latency_ns_;
  Counter* const timer_fires_;
  Counter* const wakeups_;

  Mutex post_mu_;
  std::vector<std::function<void()>> posted_ DSGM_GUARDED_BY(post_mu_);

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::thread::id> loop_id_{};
  std::thread thread_;
};

}  // namespace dsgm

#endif  // DSGM_NET_REACTOR_H_
