#include "net/codec.h"

#include <cstring>

#include "net/compress.h"

namespace dsgm {
namespace {

/// Bounds-checked forward reader over a payload buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  const uint8_t* cursor() const { return data_ + pos_; }
  void SkipRemaining() { pos_ = size_; }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return InvalidArgumentError("codec: truncated frame");
    *out = data_[pos_++];
    return Status::Ok();
  }

  Status ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) return InvalidArgumentError("codec: truncated varint");
      const uint8_t byte = data_[pos_++];
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = value;
        return Status::Ok();
      }
    }
    return InvalidArgumentError("codec: varint longer than 64 bits");
  }

  Status ReadZigzag(int64_t* out) {
    uint64_t raw = 0;
    DSGM_RETURN_IF_ERROR(ReadVarint(&raw));
    *out = ZigzagDecode(raw);
    return Status::Ok();
  }

  Status ReadFloat(float* out) {
    if (remaining() < 4) return InvalidArgumentError("codec: truncated float");
    uint32_t bits = 0;
    for (int i = 0; i < 4; ++i) {
      bits |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += 4;
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendZigzag(int64_t value, std::vector<uint8_t>* out) {
  AppendVarint(ZigzagEncode(value), out);
}

void AppendFloat(float value, std::vector<uint8_t>* out) {
  uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

/// Caps a decoder-side reserve() by what the remaining bytes could possibly
/// hold, so a forged element count cannot force a huge allocation.
size_t SafeReserve(uint64_t claimed, size_t bytes_left, size_t min_bytes_per_item) {
  const uint64_t cap = bytes_left / min_bytes_per_item;
  return static_cast<size_t>(claimed < cap ? claimed : cap);
}

void AppendBundleBody(const UpdateBundle& bundle, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(bundle.kind));
  AppendZigzag(bundle.site, out);
  AppendZigzag(bundle.round, out);
  AppendVarint(bundle.reports.size(), out);
  int64_t previous = 0;
  for (const CounterReport& report : bundle.reports) {
    // Two's-complement delta (wraps instead of signed overflow); the
    // decoder accumulates with the same unsigned arithmetic.
    AppendZigzag(static_cast<int64_t>(static_cast<uint64_t>(report.counter) -
                                      static_cast<uint64_t>(previous)),
                 out);
    AppendVarint(report.value, out);
    previous = report.counter;
  }
}

Status DecodeBundleBody(ByteReader* reader, UpdateBundle* out) {
  uint8_t kind = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadU8(&kind));
  if (kind > static_cast<uint8_t>(UpdateBundle::Kind::kFinalCounts)) {
    return InvalidArgumentError("codec: bad UpdateBundle kind tag");
  }
  out->kind = static_cast<UpdateBundle::Kind>(kind);
  int64_t site = 0;
  int64_t round = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&site));
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&round));
  if (site < INT32_MIN || site > INT32_MAX || round < INT32_MIN || round > INT32_MAX) {
    return InvalidArgumentError("codec: UpdateBundle site/round out of range");
  }
  out->site = static_cast<int32_t>(site);
  out->round = static_cast<int32_t>(round);
  uint64_t count = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&count));
  out->reports.clear();
  out->reports.reserve(SafeReserve(count, reader->remaining(), 2));
  int64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delta = 0;
    uint64_t value = 0;
    DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&delta));
    DSGM_RETURN_IF_ERROR(reader->ReadVarint(&value));
    if (value > UINT32_MAX) {
      return InvalidArgumentError("codec: CounterReport value out of range");
    }
    // Unsigned accumulation: a crafted delta must not be signed overflow
    // (UB); wraparound just yields an id the consumer's bounds checks drop.
    previous = static_cast<int64_t>(static_cast<uint64_t>(previous) +
                                    static_cast<uint64_t>(delta));
    out->reports.push_back(CounterReport{previous, static_cast<uint32_t>(value)});
  }
  return Status::Ok();
}

void AppendAdvanceBody(const RoundAdvance& advance, std::vector<uint8_t>* out) {
  AppendZigzag(advance.counter, out);
  AppendZigzag(advance.round, out);
  AppendFloat(advance.probability, out);
}

Status DecodeAdvanceBody(ByteReader* reader, RoundAdvance* out) {
  int64_t round = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&out->counter));
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&round));
  if (round < INT32_MIN || round > INT32_MAX) {
    return InvalidArgumentError("codec: RoundAdvance round out of range");
  }
  out->round = static_cast<int32_t>(round);
  return reader->ReadFloat(&out->probability);
}

void AppendBatchBody(const EventBatch& batch, std::vector<uint8_t>* out) {
  AppendZigzag(batch.num_events, out);
  AppendVarint(batch.values.size(), out);
  for (int32_t value : batch.values) AppendZigzag(value, out);
}

void AppendStatsBody(const SiteStatsReport& stats, std::vector<uint8_t>* out) {
  AppendZigzag(stats.site, out);
  AppendZigzag(stats.events_processed, out);
  AppendVarint(stats.updates_sent, out);
  AppendVarint(stats.syncs_sent, out);
  AppendVarint(stats.rounds_seen, out);
  AppendVarint(stats.heartbeats_sent, out);
}

Status DecodeStatsBody(ByteReader* reader, SiteStatsReport* out) {
  int64_t site = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&site));
  if (site < INT32_MIN || site > INT32_MAX) {
    return InvalidArgumentError("codec: stats report site out of range");
  }
  out->site = static_cast<int32_t>(site);
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&out->events_processed));
  if (out->events_processed < 0) {
    return InvalidArgumentError("codec: stats report events out of range");
  }
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&out->updates_sent));
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&out->syncs_sent));
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&out->rounds_seen));
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&out->heartbeats_sent));
  return Status::Ok();
}

void AppendTraceChunkBody(const TraceChunk& chunk, std::vector<uint8_t>* out) {
  AppendZigzag(chunk.site, out);
  AppendVarint(chunk.first_seq, out);
  AppendVarint(chunk.events.size(), out);
  int64_t previous = 0;
  for (const TraceEvent& event : chunk.events) {
    // Delta-coded timestamps (events are near-sorted, so deltas are small);
    // two's-complement wraparound like bundle counter ids.
    AppendZigzag(static_cast<int64_t>(static_cast<uint64_t>(event.t_nanos) -
                                      static_cast<uint64_t>(previous)),
                 out);
    out->push_back(static_cast<uint8_t>(event.type));
    AppendZigzag(event.site, out);
    AppendZigzag(event.arg, out);
    previous = event.t_nanos;
  }
}

Status DecodeTraceChunkBody(ByteReader* reader, TraceChunk* out) {
  int64_t site = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&site));
  if (site < INT32_MIN || site > INT32_MAX) {
    return InvalidArgumentError("codec: trace chunk site out of range");
  }
  out->site = static_cast<int32_t>(site);
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&out->first_seq));
  uint64_t count = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&count));
  out->events.clear();
  out->events.reserve(SafeReserve(count, reader->remaining(), 4));
  int64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    int64_t delta = 0;
    DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&delta));
    previous = static_cast<int64_t>(static_cast<uint64_t>(previous) +
                                    static_cast<uint64_t>(delta));
    event.t_nanos = previous;
    uint8_t type = 0;
    DSGM_RETURN_IF_ERROR(reader->ReadU8(&type));
    if (type > static_cast<uint8_t>(TraceEventType::kAlert)) {
      return InvalidArgumentError("codec: bad trace event type tag");
    }
    event.type = static_cast<TraceEventType>(type);
    int64_t event_site = 0;
    DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&event_site));
    if (event_site < INT32_MIN || event_site > INT32_MAX) {
      return InvalidArgumentError("codec: trace event site out of range");
    }
    event.site = static_cast<int32_t>(event_site);
    DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&event.arg));
    out->events.push_back(event);
  }
  return Status::Ok();
}

Status DecodeBatchBody(ByteReader* reader, EventBatch* out) {
  int64_t num_events = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&num_events));
  if (num_events < 0 || num_events > INT32_MAX) {
    return InvalidArgumentError("codec: EventBatch num_events out of range");
  }
  out->num_events = static_cast<int32_t>(num_events);
  uint64_t count = 0;
  DSGM_RETURN_IF_ERROR(reader->ReadVarint(&count));
  out->values.clear();
  out->values.reserve(SafeReserve(count, reader->remaining(), 1));
  for (uint64_t i = 0; i < count; ++i) {
    int64_t value = 0;
    DSGM_RETURN_IF_ERROR(reader->ReadZigzag(&value));
    if (value < INT32_MIN || value > INT32_MAX) {
      return InvalidArgumentError("codec: EventBatch value out of range");
    }
    out->values.push_back(static_cast<int32_t>(value));
  }
  return Status::Ok();
}

}  // namespace

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

Frame MakeFrame(UpdateBundle bundle) {
  Frame frame;
  frame.type = FrameType::kUpdateBundle;
  frame.bundle = std::move(bundle);
  return frame;
}

Frame MakeFrame(RoundAdvance advance) {
  Frame frame;
  frame.type = FrameType::kRoundAdvance;
  frame.advance = advance;
  return frame;
}

Frame MakeFrame(EventBatch batch) {
  Frame frame;
  frame.type = FrameType::kEventBatch;
  frame.batch = std::move(batch);
  return frame;
}

Frame MakeChannelClose(FrameType channel) {
  Frame frame;
  frame.type = FrameType::kChannelClose;
  frame.channel = channel;
  return frame;
}

Frame MakeHello(int32_t site) {
  return MakeHello(site, WireCompressionEnabled() ? kCapCompression : 0);
}

Frame MakeHello(int32_t site, uint64_t caps) {
  Frame frame;
  frame.type = FrameType::kHello;
  frame.site = site;
  frame.caps = caps;
  return frame;
}

Frame MakeHeartbeat(int32_t site) {
  Frame frame;
  frame.type = FrameType::kHeartbeat;
  frame.site = site;
  return frame;
}

Frame MakeHeartbeat(int32_t site, const HeartbeatTimestamps& hb) {
  Frame frame;
  frame.type = FrameType::kHeartbeat;
  frame.site = site;
  frame.hb = hb;
  return frame;
}

Frame MakeStatsReport(const SiteStatsReport& stats) {
  Frame frame;
  frame.type = FrameType::kStatsReport;
  frame.site = stats.site;
  frame.stats = stats;
  return frame;
}

Frame MakeTraceChunk(TraceChunk chunk) {
  Frame frame;
  frame.type = FrameType::kTraceChunk;
  frame.site = chunk.site;
  frame.trace = std::move(chunk);
  return frame;
}

void AppendFrame(const Frame& frame, std::vector<uint8_t>* out) {
  const size_t prefix_at = out->size();
  out->resize(prefix_at + 4);  // Patched below.
  out->push_back(static_cast<uint8_t>(frame.type));
  switch (frame.type) {
    case FrameType::kUpdateBundle:
      AppendBundleBody(frame.bundle, out);
      break;
    case FrameType::kRoundAdvance:
      AppendAdvanceBody(frame.advance, out);
      break;
    case FrameType::kEventBatch:
      AppendBatchBody(frame.batch, out);
      break;
    case FrameType::kChannelClose:
      out->push_back(static_cast<uint8_t>(frame.channel));
      break;
    case FrameType::kHello:
      out->push_back(frame.protocol_version);
      AppendZigzag(frame.site, out);
      // The caps varint exists since v5; older (or forged-older) hellos
      // must stay byte-identical to what a real old peer would send.
      if (frame.protocol_version >= 5) AppendVarint(frame.caps, out);
      break;
    case FrameType::kHeartbeat:
      AppendZigzag(frame.site, out);
      AppendZigzag(frame.hb.send_nanos, out);
      AppendZigzag(frame.hb.echo_nanos, out);
      AppendZigzag(frame.hb.echo_recv_nanos, out);
      break;
    case FrameType::kStatsReport:
      AppendStatsBody(frame.stats, out);
      break;
    case FrameType::kTraceChunk:
      AppendTraceChunkBody(frame.trace, out);
      break;
    case FrameType::kCompressed:
      // kCompressed is a wire envelope, not a Frame value: the decoder
      // unwraps it (Frame::compressed) and the encoder wraps via
      // AppendFrameMaybeCompressed. A Frame typed kCompressed is a bug.
      DSGM_CHECK(false) << "AppendFrame: kCompressed is not a frame value";
      break;
  }
  const size_t payload = out->size() - prefix_at - 4;
  DSGM_CHECK_LE(payload, kMaxFramePayload);
  for (int i = 0; i < 4; ++i) {
    (*out)[prefix_at + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload >> (8 * i));
  }
}

Status DecodeFramePayload(const uint8_t* data, size_t size, Frame* out) {
  ByteReader reader(data, size);
  uint8_t type = 0;
  DSGM_RETURN_IF_ERROR(reader.ReadU8(&type));
  if (type < static_cast<uint8_t>(FrameType::kUpdateBundle) ||
      type > static_cast<uint8_t>(FrameType::kCompressed)) {
    return InvalidArgumentError("codec: bad frame type tag");
  }
  out->type = static_cast<FrameType>(type);
  out->compressed = false;
  switch (out->type) {
    case FrameType::kUpdateBundle:
      DSGM_RETURN_IF_ERROR(DecodeBundleBody(&reader, &out->bundle));
      break;
    case FrameType::kRoundAdvance:
      DSGM_RETURN_IF_ERROR(DecodeAdvanceBody(&reader, &out->advance));
      break;
    case FrameType::kEventBatch:
      DSGM_RETURN_IF_ERROR(DecodeBatchBody(&reader, &out->batch));
      break;
    case FrameType::kChannelClose: {
      uint8_t channel = 0;
      DSGM_RETURN_IF_ERROR(reader.ReadU8(&channel));
      if (channel < static_cast<uint8_t>(FrameType::kUpdateBundle) ||
          channel > static_cast<uint8_t>(FrameType::kEventBatch)) {
        return InvalidArgumentError("codec: bad channel tag in close frame");
      }
      out->channel = static_cast<FrameType>(channel);
      break;
    }
    case FrameType::kHello: {
      DSGM_RETURN_IF_ERROR(reader.ReadU8(&out->protocol_version));
      int64_t site = 0;
      DSGM_RETURN_IF_ERROR(reader.ReadZigzag(&site));
      if (site < INT32_MIN || site > INT32_MAX) {
        return InvalidArgumentError("codec: hello site out of range");
      }
      out->site = static_cast<int32_t>(site);
      // v5+ hellos carry a caps varint; tolerate its absence (caps = none)
      // so a minimal v5 hello decodes, but never read it from older hellos
      // — their byte layout is frozen and the trailing-bytes check below
      // keeps rejecting any extra.
      out->caps = 0;
      if (out->protocol_version >= 5 && !reader.done()) {
        DSGM_RETURN_IF_ERROR(reader.ReadVarint(&out->caps));
      }
      break;
    }
    case FrameType::kHeartbeat: {
      int64_t site = 0;
      DSGM_RETURN_IF_ERROR(reader.ReadZigzag(&site));
      if (site < INT32_MIN || site > INT32_MAX) {
        return InvalidArgumentError("codec: heartbeat site out of range");
      }
      out->site = static_cast<int32_t>(site);
      DSGM_RETURN_IF_ERROR(reader.ReadZigzag(&out->hb.send_nanos));
      DSGM_RETURN_IF_ERROR(reader.ReadZigzag(&out->hb.echo_nanos));
      DSGM_RETURN_IF_ERROR(reader.ReadZigzag(&out->hb.echo_recv_nanos));
      break;
    }
    case FrameType::kStatsReport:
      DSGM_RETURN_IF_ERROR(DecodeStatsBody(&reader, &out->stats));
      out->site = out->stats.site;
      break;
    case FrameType::kTraceChunk:
      DSGM_RETURN_IF_ERROR(DecodeTraceChunkBody(&reader, &out->trace));
      out->site = out->trace.site;
      break;
    case FrameType::kCompressed: {
      // Envelope: varint declared raw size | LZ block. Every remote claim
      // is bounded before use: the declared size is capped like any frame
      // payload, the block must decompress to EXACTLY that size, and the
      // inner payload is re-decoded with the same defenses. One level only
      // — a nested envelope (or an enveloped hello, which must stay
      // readable pre-negotiation) is rejected by tag before recursing.
      uint64_t raw_size = 0;
      DSGM_RETURN_IF_ERROR(reader.ReadVarint(&raw_size));
      if (raw_size == 0 || raw_size > kMaxFramePayload) {
        return InvalidArgumentError(
            "codec: compressed declared size out of range");
      }
      std::vector<uint8_t> inner;
      DSGM_RETURN_IF_ERROR(LzDecompress(reader.cursor(), reader.remaining(),
                                        static_cast<size_t>(raw_size),
                                        &inner));
      reader.SkipRemaining();
      if (inner[0] == static_cast<uint8_t>(FrameType::kCompressed)) {
        return InvalidArgumentError("codec: nested compressed envelope");
      }
      if (inner[0] == static_cast<uint8_t>(FrameType::kHello)) {
        return InvalidArgumentError("codec: compressed hello");
      }
      DSGM_RETURN_IF_ERROR(
          DecodeFramePayload(inner.data(), inner.size(), out));
      out->compressed = true;
      break;
    }
  }
  if (!reader.done()) {
    return InvalidArgumentError("codec: trailing bytes after frame payload");
  }
  return Status::Ok();
}

bool CompressionEligible(const Frame& frame) {
  return frame.type == FrameType::kEventBatch ||
         (frame.type == FrameType::kUpdateBundle &&
          frame.bundle.kind == UpdateBundle::Kind::kFinalCounts);
}

void AppendFrameMaybeCompressed(const Frame& frame, std::vector<uint8_t>* out) {
  // Payloads below this floor can't amortize the envelope header and are
  // not worth the instrument noise either.
  constexpr size_t kCompressMinPayload = 64;
  if (!CompressionEligible(frame) || !WireCompressionEnabled()) {
    AppendFrame(frame, out);
    return;
  }
  std::vector<uint8_t> raw;
  AppendFrame(frame, &raw);
  const size_t payload_size = raw.size() - 4;
  if (payload_size < kCompressMinPayload) {
    out->insert(out->end(), raw.begin(), raw.end());
    return;
  }
  std::vector<uint8_t> packed;
  packed.reserve(LzCompressBound(payload_size));
  LzCompress(raw.data() + 4, payload_size, &packed);
  static Counter* const bytes_in =
      MetricsRegistry::Global().GetCounter("net.compress.bytes_in");
  static Counter* const bytes_out =
      MetricsRegistry::Global().GetCounter("net.compress.bytes_out");
  static Gauge* const ratio_x1000 =
      MetricsRegistry::Global().GetGauge("net.compress.ratio_x1000");
  size_t wire_payload = payload_size;
  // Envelope payload: type byte + declared-size varint + LZ block. Emit it
  // only when it actually beats the raw encoding; incompressible batches
  // ship raw (and still count, so the ratio reflects the wire, not the
  // codec's best case).
  std::vector<uint8_t> header;
  header.push_back(static_cast<uint8_t>(FrameType::kCompressed));
  AppendVarint(payload_size, &header);
  if (header.size() + packed.size() < payload_size) {
    wire_payload = header.size() + packed.size();
    const size_t prefix_at = out->size();
    out->resize(prefix_at + 4);
    out->insert(out->end(), header.begin(), header.end());
    out->insert(out->end(), packed.begin(), packed.end());
    for (int i = 0; i < 4; ++i) {
      (*out)[prefix_at + static_cast<size_t>(i)] =
          static_cast<uint8_t>(wire_payload >> (8 * i));
    }
  } else {
    out->insert(out->end(), raw.begin(), raw.end());
  }
  bytes_in->Add(payload_size);
  bytes_out->Add(wire_payload);
  const uint64_t in_total = bytes_in->Value();
  const uint64_t out_total = bytes_out->Value();
  if (out_total > 0) {
    ratio_x1000->Set(static_cast<int64_t>(in_total * 1000 / out_total));
  }
}

Status DecodeFrame(const uint8_t* data, size_t size, Frame* out, size_t* consumed) {
  if (size < 4) return InvalidArgumentError("codec: truncated length prefix");
  const uint32_t length = DecodeLengthPrefix(data);
  if (length > kMaxFramePayload) {
    return InvalidArgumentError("codec: frame payload exceeds kMaxFramePayload");
  }
  if (size - 4 < length) return InvalidArgumentError("codec: truncated frame payload");
  DSGM_RETURN_IF_ERROR(DecodeFramePayload(data + 4, length, out));
  *consumed = 4 + static_cast<size_t>(length);
  return Status::Ok();
}

}  // namespace dsgm
